"""Livermore Kernel 23 — 2-D implicit hydrodynamics fragment (Sec. V-A).

The kernel (Listing 2 of the paper)::

    for l in 1..loop:
      for j in 1..m-1:
        for k in 1..n-1:
          qa = za[j+1][k]*zr[j][k] + za[j-1][k]*zb[j][k]
             + za[j][k+1]*zu[j][k] + za[j][k-1]*zv[j][k] + zz[j][k]
          za[j][k] += 0.175*(qa - za[j][k])

is a Gauss-Seidel sweep: ``za[j-1]``/``za[j][k-1]`` are *updated* values,
``za[j+1]``/``za[j][k+1]`` are previous-iteration values. Parallelized by
blocking ``za`` into a grid and pipelining the NW→SE wavefront.

ORWL decomposition (one task per block, 4 operations as in Sec. VI-B.1):

* ``north`` — updates the block's first row (consumes the N neighbour's
  published bottom row);
* ``west`` — updates the first column (consumes the W neighbour's right
  column);
* ``diag`` — updates the corner cell (consumes one element of each);
* ``center`` — updates the interior *and publishes* the block's bottom
  row (``s_edge``) and right column (``e_edge``) locations.

The four operations rotate write access on the block's ``interior``
location in exactly that order, which reproduces the sequential update
order bit-for-bit — data-execution runs are compared to the sequential
reference with exact equality, a strong test of the FIFO semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isqrt
from typing import Callable

import numpy as np

from repro.errors import ReproError
from repro.openmp.runtime import OMPResult, OpenMPRuntime
from repro.orwl.runtime import Runtime, RunResult
from repro.sim.params import CostModel
from repro.sim.process import Compute, Touch
from repro.topology.tree import Topology

__all__ = [
    "Lk23Config",
    "lk23_reference",
    "make_lk23_arrays",
    "choose_grid",
    "build_orwl_lk23",
    "run_orwl_lk23",
    "run_openmp_lk23",
    "FLOPS_PER_CELL",
]

#: 4 mult + 4 add for qa, then sub/mult/add for the relaxation update.
FLOPS_PER_CELL = 11.0
RELAX = 0.175
#: za plus the five coefficient arrays streamed per swept cell.
ARRAYS_TOUCHED = 6


@dataclass(frozen=True)
class Lk23Config:
    """Problem and decomposition parameters.

    ``n_threads`` is the x-axis of Fig. 4: with 4 operations per block,
    ``n_threads // 4`` blocks are used (a single block below 4 threads,
    matching the paper's description of its runs).
    """

    n: int = 16384  # matrix is n × n doubles
    iterations: int = 100
    n_threads: int = 64
    execute_data: bool = False

    def __post_init__(self) -> None:
        if self.n < 4:
            raise ReproError("matrix order must be >= 4")
        if self.iterations < 1 or self.n_threads < 1:
            raise ReproError("iterations and n_threads must be >= 1")

    @property
    def n_blocks(self) -> int:
        return max(1, self.n_threads // 4)


def choose_grid(n_blocks: int) -> tuple[int, int]:
    """Near-square (rows, cols) factorization of *n_blocks*."""
    if n_blocks < 1:
        raise ReproError("n_blocks must be >= 1")
    best = (1, n_blocks)
    for gh in range(1, isqrt(n_blocks) + 1):
        if n_blocks % gh == 0:
            best = (gh, n_blocks // gh)
    return best


# -- sequential reference ---------------------------------------------------------


def lk23_reference(
    za: np.ndarray,
    zb: np.ndarray,
    zr: np.ndarray,
    zu: np.ndarray,
    zv: np.ndarray,
    zz: np.ndarray,
    iterations: int,
) -> np.ndarray:
    """The sequential kernel, exactly as in Listing 2 (in place on a copy)."""
    za = za.copy()
    m, n = za.shape
    for _ in range(iterations):
        for j in range(1, m - 1):
            for k in range(1, n - 1):
                qa = (
                    za[j + 1, k] * zr[j, k]
                    + za[j - 1, k] * zb[j, k]
                    + za[j, k + 1] * zu[j, k]
                    + za[j, k - 1] * zv[j, k]
                    + zz[j, k]
                )
                za[j, k] += RELAX * (qa - za[j, k])
    return za


def make_lk23_arrays(n: int, seed: int = 0) -> dict[str, np.ndarray]:
    """Deterministic random inputs (coefficients scaled for stability)."""
    rng = np.random.default_rng(seed)
    return {
        "za": rng.random((n, n)),
        "zb": rng.random((n, n)) * 0.2,
        "zr": rng.random((n, n)) * 0.2,
        "zu": rng.random((n, n)) * 0.2,
        "zv": rng.random((n, n)) * 0.2,
        "zz": rng.random((n, n)) * 0.1,
    }


def _sweep_cells(arrays: dict[str, np.ndarray], cells) -> None:
    """Apply the update to an iterable of (j, k) cells, in order."""
    za = arrays["za"]
    zb, zr = arrays["zb"], arrays["zr"]
    zu, zv, zz = arrays["zu"], arrays["zv"], arrays["zz"]
    for j, k in cells:
        qa = (
            za[j + 1, k] * zr[j, k]
            + za[j - 1, k] * zb[j, k]
            + za[j, k + 1] * zu[j, k]
            + za[j, k - 1] * zv[j, k]
            + zz[j, k]
        )
        za[j, k] += RELAX * (qa - za[j, k])


# -- ORWL implementation ---------------------------------------------------------------


class _Block:
    """Geometry of one block in the grid (global coordinates)."""

    def __init__(self, cfg: Lk23Config, gh: int, gw: int, bi: int, bj: int):
        self.bi, self.bj = bi, bj
        n = cfg.n
        self.r0 = bi * n // gh
        self.r1 = (bi + 1) * n // gh
        self.c0 = bj * n // gw
        self.c1 = (bj + 1) * n // gw
        # Updated cell ranges (global boundary rows/cols are fixed).
        self.row_lo = self.r0 + 1 if bi > 0 else 1
        self.row_hi = min(self.r1, n - 1)
        self.col_lo = self.c0 + 1 if bj > 0 else 1
        self.col_hi = min(self.c1, n - 1)
        self.has_north = bi > 0
        self.has_west = bj > 0

    # Cell iterables per operation (generators — cheap in cost-only mode,
    # where only the counts below are used).
    def diag_cells(self):
        if self.has_north and self.has_west:
            yield (self.r0, self.c0)

    def north_cells(self):
        if self.has_north:
            for k in range(self.col_lo, self.col_hi):
                yield (self.r0, k)

    def west_cells(self):
        if self.has_west:
            for j in range(self.row_lo, self.row_hi):
                yield (j, self.c0)

    def center_cells(self):
        for j in range(self.row_lo, self.row_hi):
            for k in range(self.col_lo, self.col_hi):
                yield (j, k)

    def diag_count(self) -> int:
        return 1 if (self.has_north and self.has_west) else 0

    def north_count(self) -> int:
        return max(0, self.col_hi - self.col_lo) if self.has_north else 0

    def west_count(self) -> int:
        return max(0, self.row_hi - self.row_lo) if self.has_west else 0

    def center_count(self) -> int:
        return max(0, self.row_hi - self.row_lo) * max(0, self.col_hi - self.col_lo)

    @property
    def rows(self) -> int:
        return self.r1 - self.r0

    @property
    def cols(self) -> int:
        return self.c1 - self.c0

    @property
    def interior_bytes(self) -> int:
        return self.rows * self.cols * 8

    @property
    def edge_row_bytes(self) -> int:
        return self.cols * 8

    @property
    def edge_col_bytes(self) -> int:
        return self.rows * 8


def build_orwl_lk23(
    runtime: Runtime,
    cfg: Lk23Config,
    arrays: dict[str, np.ndarray] | None = None,
) -> dict:
    """Declare the full LK23 task/location graph on *runtime*.

    With *arrays* given (small sizes), operations execute the real
    computation on the shared ``za`` in addition to yielding their cost
    model, and the result is bit-identical to :func:`lk23_reference`.
    """
    if cfg.execute_data and arrays is None:
        raise ReproError("execute_data requires the input arrays")
    gh, gw = choose_grid(cfg.n_blocks)
    blocks: dict[tuple[int, int], _Block] = {}
    tasks: dict[tuple[int, int], dict] = {}

    single_op = cfg.n_threads < 4

    for bi in range(gh):
        for bj in range(gw):
            blk = _Block(cfg, gh, gw, bi, bj)
            blocks[bi, bj] = blk
            task = runtime.task(f"blk{bi}_{bj}")
            entry: dict = {"task": task, "block": blk}
            if single_op:
                entry["ops"] = {"center": task.operation("center")}
            else:
                # Creation order fixes the interior write rotation:
                # diag → north → west → center (the sequential sweep order).
                entry["ops"] = {
                    "diag": task.operation(f"blk{bi}_{bj}/diag"),
                    "north": task.operation(f"blk{bi}_{bj}/north"),
                    "west": task.operation(f"blk{bi}_{bj}/west"),
                    "center": task.operation(f"blk{bi}_{bj}/center"),
                }
            first_op = next(iter(entry["ops"].values()))
            entry["interior"] = first_op.location(
                f"za{bi}_{bj}", blk.interior_bytes
            )
            center = entry["ops"]["center"]
            if bi < gh - 1:
                entry["s_edge"] = center.location(
                    f"s{bi}_{bj}", blk.edge_row_bytes
                )
            if bj < gw - 1:
                entry["e_edge"] = center.location(
                    f"e{bi}_{bj}", blk.edge_col_bytes
                )
            if not single_op:
                # Old-value exports: the block's top row / left column are
                # read by the N/W neighbours *before* this block updates
                # them each iteration (Gauss-Seidel reads previous-sweep
                # values southwards/eastwards).
                if bi > 0:
                    entry["n_edge"] = entry["ops"]["north"].location(
                        f"n{bi}_{bj}", blk.edge_row_bytes
                    )
                if bj > 0:
                    entry["w_edge"] = entry["ops"]["west"].location(
                        f"w{bi}_{bj}", blk.edge_col_bytes
                    )
            tasks[bi, bj] = entry

    # Coefficient blocks: task-private machine buffers (not locations).
    for (bi, bj), entry in tasks.items():
        blk = entry["block"]
        entry["coeffs"] = runtime.machine.allocate(
            5 * blk.interior_bytes, f"coef{bi}_{bj}"
        )

    # Handles: every op rotates the interior; border ops read the
    # neighbours' published edges; center publishes own edges.
    for (bi, bj), entry in tasks.items():
        ops = entry["ops"]
        handles: dict = {}
        for name, op in ops.items():
            handles[f"int_{name}"] = op.write_handle(
                entry["interior"], iterative=True
            )
        if not single_op:
            if bi > 0:
                handles["n_in"] = ops["north"].read_handle(
                    tasks[bi - 1, bj]["s_edge"], iterative=True
                )
                if bj > 0:
                    h = ops["diag"].read_handle(
                        tasks[bi - 1, bj]["s_edge"], iterative=True
                    )
                    h.traffic = 8.0
                    handles["d_n_in"] = h
            if bj > 0:
                handles["w_in"] = ops["west"].read_handle(
                    tasks[bi, bj - 1]["e_edge"], iterative=True
                )
                if bi > 0:
                    h = ops["diag"].read_handle(
                        tasks[bi, bj - 1]["e_edge"], iterative=True
                    )
                    h.traffic = 8.0
                    handles["d_w_in"] = h
        if "s_edge" in entry:
            handles["s_out"] = ops["center"].write_handle(
                entry["s_edge"], iterative=True
            )
        if "e_edge" in entry:
            handles["e_out"] = ops["center"].write_handle(
                entry["e_edge"], iterative=True
            )
        if not single_op:
            # Writers of the own old-value exports: the ops that update
            # the top row (diag + north) and left column (diag + west).
            if "n_edge" in entry:
                handles["n_out"] = ops["north"].write_handle(
                    entry["n_edge"], iterative=True
                )
                if bj > 0:
                    handles["d_n_out"] = ops["diag"].write_handle(
                        entry["n_edge"], iterative=True
                    )
            if "w_edge" in entry:
                handles["w_out"] = ops["west"].write_handle(
                    entry["w_edge"], iterative=True
                )
                if bi > 0:
                    handles["d_w_out"] = ops["diag"].write_handle(
                        entry["w_edge"], iterative=True
                    )
            # Old-value readers (init_rank -1: the iteration-0 read must
            # see the initial array, before the neighbour's first write).
            if bi < gh - 1:
                south = tasks[bi + 1, bj]
                h = ops["center"].read_handle(south["n_edge"], iterative=True)
                h.init_rank = -1
                handles["old_s"] = h
                if bj > 0:
                    h = ops["west"].read_handle(south["n_edge"], iterative=True)
                    h.init_rank = -1
                    h.traffic = 8.0
                    handles["old_s_w"] = h
            if bj < gw - 1:
                east = tasks[bi, bj + 1]
                h = ops["center"].read_handle(east["w_edge"], iterative=True)
                h.init_rank = -1
                handles["old_e"] = h
                if bi > 0:
                    h = ops["north"].read_handle(east["w_edge"], iterative=True)
                    h.init_rank = -1
                    h.traffic = 8.0
                    handles["old_e_n"] = h
        entry["handles"] = handles

    # Bodies.
    for (bi, bj), entry in tasks.items():
        blk = entry["block"]
        h = entry["handles"]
        single = single_op

        def border_body(op, *, kind, entry=entry, blk=blk, h=h):
            interior = h[f"int_{kind}"]
            if kind == "diag":
                outs = [x for x in (h.get("d_n_out"), h.get("d_w_out")) if x]
                inputs = [x for x in (h.get("d_n_in"), h.get("d_w_in")) if x]
                cells_fn, n_cells, io_bytes = blk.diag_cells, blk.diag_count(), 16.0
            elif kind == "north":
                outs = [h["n_out"]] if "n_out" in h else []
                inputs = [
                    x for x in (h.get("n_in"), h.get("old_e_n")) if x
                ]
                cells_fn, n_cells, io_bytes = (
                    blk.north_cells, blk.north_count(), blk.edge_row_bytes
                )
            else:
                outs = [h["w_out"]] if "w_out" in h else []
                inputs = [
                    x for x in (h.get("w_in"), h.get("old_s_w")) if x
                ]
                cells_fn, n_cells, io_bytes = (
                    blk.west_cells, blk.west_count(), blk.edge_col_bytes
                )

            for _ in range(cfg.iterations):
                yield from interior.acquire()
                # Own old-value exports: writing waits until the N/W
                # neighbours have read last iteration's boundary.
                for hout in outs:
                    yield from hout.acquire()
                for hin in inputs:
                    yield from hin.acquire()
                    yield hin.touch(io_bytes if hin.traffic is None else hin.traffic)
                if n_cells:
                    yield Touch(entry["interior"].buffer, n_cells * 8 * 2, write=True)
                    yield Compute(FLOPS_PER_CELL * n_cells)
                    if cfg.execute_data:
                        _sweep_cells(arrays, cells_fn())
                for hin in reversed(inputs):
                    hin.release()
                for hout in reversed(outs):
                    yield hout.touch(min(io_bytes, hout.location.size))
                    hout.release()
                interior.release()

        def center_body(op, *, entry=entry, blk=blk, h=h, single=single):
            interior = h["int_center"]

            def cells_fn():
                if single:
                    yield from blk.diag_cells()
                    yield from blk.north_cells()
                    yield from blk.west_cells()
                yield from blk.center_cells()

            n_cells = blk.center_count()
            if single:
                n_cells += blk.diag_count() + blk.north_count() + blk.west_count()
            outs = [
                (h[name], nbytes)
                for name, nbytes in (
                    ("s_out", blk.edge_row_bytes),
                    ("e_out", blk.edge_col_bytes),
                )
                if name in h
            ]
            olds = [
                (h["old_s"], blk.edge_row_bytes) if "old_s" in h else None,
                (h["old_e"], blk.edge_col_bytes) if "old_e" in h else None,
            ]
            olds = [x for x in olds if x]
            for _ in range(cfg.iterations):
                yield from interior.acquire()
                for hout, _ in outs:
                    yield from hout.acquire()
                # Old-value reads: the S top row / E left column of the
                # previous sweep must still be unmodified while we compute.
                for hold, nbytes in olds:
                    yield from hold.acquire()
                    yield hold.touch(nbytes)
                # Stream za block plus the five coefficient blocks.
                yield Touch(entry["interior"].buffer, blk.interior_bytes, write=True)
                yield Touch(entry["coeffs"], 5 * blk.interior_bytes)
                yield Compute(FLOPS_PER_CELL * n_cells)
                if cfg.execute_data:
                    _sweep_cells(arrays, cells_fn())
                for hold, _ in reversed(olds):
                    hold.release()
                # Publish the bottom row / right column for the wave.
                for hout, nbytes in outs:
                    yield hout.touch(nbytes)
                    hout.release()
                interior.release()

        entry["ops"]["center"].set_body(center_body)
        for kind in ("diag", "north", "west"):
            if kind in entry["ops"]:
                entry["ops"][kind].set_body(
                    lambda op, kind=kind, body=border_body: body(op, kind=kind)
                )

    return {"tasks": tasks, "grid": (gh, gw)}


def run_orwl_lk23(
    topology: Topology,
    cfg: Lk23Config,
    *,
    affinity: bool,
    model: CostModel | None = None,
    seed: int = 0,
    arrays: dict[str, np.ndarray] | None = None,
    core: str = "auto",
) -> RunResult:
    """Build and execute the ORWL LK23 on *topology*."""
    runtime = Runtime(topology, affinity=affinity, model=model, seed=seed,
                      core=core)
    build_orwl_lk23(runtime, cfg, arrays)
    return runtime.run()


# -- OpenMP reference implementation -----------------------------------------------------


def run_openmp_lk23(
    topology: Topology,
    cfg: Lk23Config,
    *,
    binding: str | None,
    model: CostModel | None = None,
    seed: int = 0,
    arrays: dict[str, np.ndarray] | None = None,
    core: str = "auto",
    attach: Callable[[OpenMPRuntime], None] | None = None,
) -> OMPResult:
    """The paper's OpenMP version: ``parallel for`` over row chunks with
    static scheduling, one implicit barrier per iteration.

    All arrays are allocated and first-touched by the master thread (the
    usual OpenMP pattern), homing everything on one NUMA node. In data
    mode the naive chunking reads stale values across chunk boundaries —
    the same semantic drift a real ``#pragma omp parallel for`` port of
    this Gauss-Seidel kernel exhibits.
    """
    if cfg.execute_data and arrays is None:
        raise ReproError("execute_data requires the input arrays")
    omp = OpenMPRuntime(topology, cfg.n_threads, binding=binding,
                        model=model, seed=seed, core=core)
    n = cfg.n
    bytes_all = n * n * 8

    def master(rt: OpenMPRuntime):
        za = rt.allocate(bytes_all, "za")
        coeffs = rt.allocate(5 * bytes_all, "coeffs")
        yield Touch(za, write=True)
        yield Touch(coeffs)

        n_chunks = cfg.n_threads
        rows_per_chunk = (n - 2) / n_chunks

        def chunk(idx):
            lo = 1 + int(idx * rows_per_chunk)
            hi = 1 + int((idx + 1) * rows_per_chunk)
            rows = max(0, hi - lo)
            if rows == 0:
                return
            cbytes = rows * n * 8
            yield Touch(za, cbytes, write=True)
            yield Touch(coeffs, 5 * cbytes)
            yield Compute(FLOPS_PER_CELL * rows * (n - 2))
            if cfg.execute_data:
                _sweep_cells(
                    arrays,
                    ((j, k) for j in range(lo, hi) for k in range(1, n - 1)),
                )

        for _ in range(cfg.iterations):
            yield from rt.parallel_for(n_chunks, chunk)

    if attach is not None:
        attach(omp)
    return omp.run(master)
