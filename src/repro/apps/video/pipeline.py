"""The video-tracking DFG on ORWL, plus OpenMP and sequential variants.

Task graph (ids as in Figs. 1–2 of the paper, 30 tasks with the default
splits)::

    0 producer → 1 gmm (⇄ 10..25 gmm split) → 2 erode → 3..6 dilate
      → 7 ccl (⇄ 26..29 ccl split) → 8 tracking → 9 consumer

Each stage owns a location for its output; scatter stages (gmm, ccl)
write a work location their split sub-tasks read 1/k of, and gather the
per-strip results back. All handles are iterative, so the whole graph
pipelines across frames — the task parallelism the OpenMP fork-join
variant lacks.

In data-execution mode the pipeline runs the real imaging algorithms and
its per-frame tracking output is exactly equal to
:func:`run_sequential_reference` — pipeline order is fully determined by
the location FIFOs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.apps.video.ccl import (
    CCL_FLOPS_PER_PIXEL,
    label,
    merge_strip_labels,
    strip_bounds,
)
from repro.apps.video.frames import FRAME_FORMATS, FrameSpec, VideoSource
from repro.apps.video.gmm import (
    GMM_FLOPS_PER_PIXEL,
    GMM_STATE_BYTES_PER_PIXEL,
    GMMBackground,
)
from repro.apps.video.morphology import MORPH_FLOPS_PER_PIXEL, dilate3, erode3
from repro.apps.video.tracking import TRACK_FLOPS_PER_COMPONENT, CentroidTracker
from repro.errors import ReproError
from repro.openmp.runtime import OMPResult, OpenMPRuntime
from repro.orwl.runtime import Runtime, RunResult
from repro.orwl.split import split_readers
from repro.sim.params import CostModel
from repro.sim.process import Compute, Touch
from repro.topology.tree import Topology

__all__ = [
    "VideoConfig",
    "build_orwl_video",
    "run_orwl_video",
    "run_openmp_video",
    "run_sequential_video",
    "run_sequential_reference",
]

#: The producer is an acquisition/decode stage (camera DMA + unpack).
PRODUCER_FLOPS_PER_PIXEL = 1.0
ASSEMBLY_FLOPS_PER_PIXEL = 1.0
CONSUMER_FLOPS_PER_PIXEL = 1.0
#: Camera frames are RGB; masks and labels stay single-channel.
FRAME_BYTES_PER_PIXEL = 3
#: Size of a zero-copy split descriptor handed through a work location.
DESCRIPTOR_BYTES = 4096


@dataclass(frozen=True)
class VideoConfig:
    """Pipeline parameters; defaults give the paper's 30-task graph."""

    resolution: str = "HD"  # key of FRAME_FORMATS, or use `spec`
    frames: int = 50
    gmm_split: int = 16
    ccl_split: int = 4
    n_dilate: int = 4
    n_objects: int = 3
    seed: int = 0
    execute_data: bool = False

    def __post_init__(self) -> None:
        if self.resolution not in FRAME_FORMATS:
            raise ReproError(
                f"unknown resolution {self.resolution!r}; "
                f"known: {sorted(FRAME_FORMATS)}"
            )
        if self.frames < 1:
            raise ReproError("frames must be >= 1")
        if self.gmm_split < 1 or self.ccl_split < 1 or self.n_dilate < 1:
            raise ReproError("splits and dilate count must be >= 1")

    @property
    def spec(self) -> FrameSpec:
        return FRAME_FORMATS[self.resolution]

    @property
    def n_tasks(self) -> int:
        return 6 + self.n_dilate + self.gmm_split + self.ccl_split


def build_orwl_video(runtime: Runtime, cfg: VideoConfig) -> dict:
    """Declare the DFG on *runtime*; returns handles to the collected
    outputs (``result["tracks"]`` fills per frame in data mode)."""
    spec = cfg.spec
    px = spec.pixels
    frame_bytes = px * FRAME_BYTES_PER_PIXEL
    mask_bytes = px  # bool stored as bytes
    gmm_bounds = strip_bounds(spec.height, cfg.gmm_split)
    ccl_bounds = strip_bounds(spec.height, cfg.ccl_split)
    out: dict = {"tracks": [], "frames_done": 0}

    src = VideoSource(
        spec, n_objects=cfg.n_objects, seed=cfg.seed
    ) if cfg.execute_data else None

    # ---- tasks in Fig. 2 id order -------------------------------------------
    t_producer = runtime.task("producer")
    t_gmm = runtime.task("gmm")
    t_erode = runtime.task("erode")
    t_dilate = [runtime.task("dilate") for _ in range(cfg.n_dilate)]
    t_ccl = runtime.task("ccl")
    t_track = runtime.task("tracking")
    t_consumer = runtime.task("consumer")
    t_gmm_split = [runtime.task("gmm split") for _ in range(cfg.gmm_split)]
    t_ccl_split = [runtime.task("ccl split") for _ in range(cfg.ccl_split)]
    # Materialize main operations now so operation ids match the task ids
    # of Figs. 1-2 (0 producer, 1 gmm, 2 erode, 3.. dilate, ccl, tracking,
    # consumer, then the gmm/ccl split ranks).
    for t in (
        t_producer, t_gmm, t_erode, *t_dilate, t_ccl, t_track, t_consumer,
        *t_gmm_split, *t_ccl_split,
    ):
        t.main_op

    # ---- locations ------------------------------------------------------------
    loc_frame = t_producer.location("frame", frame_bytes)
    loc_gmm_work = t_gmm.location("gmm_work", frame_bytes)
    loc_fg = t_gmm.location("fg_mask", mask_bytes)
    loc_gmm_piece = [
        t.location(f"gmm_piece{i}", max(1, (hi - lo) * spec.width))
        for i, (t, (lo, hi)) in enumerate(zip(t_gmm_split, gmm_bounds))
    ]
    loc_eroded = t_erode.location("eroded", mask_bytes)
    loc_dilated = [
        t.location(f"dilated{k}", mask_bytes) for k, t in enumerate(t_dilate)
    ]
    loc_ccl_work = t_ccl.location("ccl_work", mask_bytes)
    loc_labels = t_ccl.location("labels", 8192)
    loc_ccl_piece = [
        t.location(f"ccl_piece{i}", max(1, 4 * (hi - lo) * spec.width))
        for i, (t, (lo, hi)) in enumerate(zip(t_ccl_split, ccl_bounds))
    ]
    loc_tracks = t_track.location("tracks", 4096)

    # ---- handles -----------------------------------------------------------------
    h_prod_frame = t_producer.write_handle(loc_frame, iterative=True)

    h_gmm_frame = t_gmm.read_handle(loc_frame, iterative=True)
    h_gmm_work = t_gmm.write_handle(loc_gmm_work, iterative=True)
    h_gmm_pieces = [
        t_gmm.read_handle(loc, iterative=True) for loc in loc_gmm_piece
    ]
    h_gmm_fg = t_gmm.write_handle(loc_fg, iterative=True)

    h_split_work = split_readers(loc_gmm_work, [t.main_op for t in t_gmm_split])
    h_split_piece = [
        t.write_handle(loc, iterative=True)
        for t, loc in zip(t_gmm_split, loc_gmm_piece)
    ]

    h_erode_in = t_erode.read_handle(loc_fg, iterative=True)
    h_erode_out = t_erode.write_handle(loc_eroded, iterative=True)

    h_dilate_in = []
    h_dilate_out = []
    prev_loc = loc_eroded
    for k, t in enumerate(t_dilate):
        h_dilate_in.append(t.read_handle(prev_loc, iterative=True))
        h_dilate_out.append(t.write_handle(loc_dilated[k], iterative=True))
        prev_loc = loc_dilated[k]

    h_ccl_in = t_ccl.read_handle(prev_loc, iterative=True)
    h_ccl_work = t_ccl.write_handle(loc_ccl_work, iterative=True)
    h_ccl_pieces = [t_ccl.read_handle(loc, iterative=True) for loc in loc_ccl_piece]
    h_ccl_labels = t_ccl.write_handle(loc_labels, iterative=True)

    h_cclsplit_work = split_readers(loc_ccl_work, [t.main_op for t in t_ccl_split])
    h_cclsplit_piece = [
        t.write_handle(loc, iterative=True)
        for t, loc in zip(t_ccl_split, loc_ccl_piece)
    ]

    h_track_in = t_track.read_handle(loc_labels, iterative=True)
    h_track_out = t_track.write_handle(loc_tracks, iterative=True)

    h_cons_in = t_consumer.read_handle(loc_tracks, iterative=True)

    # ---- bodies --------------------------------------------------------------------
    def producer_body(op):
        for _ in range(cfg.frames):
            yield from h_prod_frame.acquire()
            yield Compute(PRODUCER_FLOPS_PER_PIXEL * px)
            yield h_prod_frame.touch(frame_bytes)
            if cfg.execute_data:
                h_prod_frame.store(src.next_frame())
            h_prod_frame.release()

    def gmm_body(op):
        # orwl_split is zero-copy: the work location publishes a view of
        # the producer's frame (a descriptor, not a 25 MB copy); the split
        # workers pull their strips from the frame buffer in parallel.
        for _ in range(cfg.frames):
            yield from h_gmm_frame.acquire()
            yield from h_gmm_work.acquire()
            yield h_gmm_frame.touch(DESCRIPTOR_BYTES)
            yield h_gmm_work.touch(DESCRIPTOR_BYTES)
            if cfg.execute_data:
                h_gmm_work.store(h_gmm_frame.map())
            h_gmm_work.release()
            h_gmm_frame.release()
            # Gather strips into the foreground mask.
            yield from h_gmm_fg.acquire()
            pieces = []
            for h in h_gmm_pieces:
                yield from h.acquire()
                yield h.touch()
                if cfg.execute_data:
                    pieces.append(h.map())
                h.release()
            yield Compute(ASSEMBLY_FLOPS_PER_PIXEL * px)
            yield h_gmm_fg.touch(mask_bytes)
            if cfg.execute_data:
                h_gmm_fg.store(np.vstack(pieces))
            h_gmm_fg.release()

    def gmm_split_body(op, idx):
        lo, hi = gmm_bounds[idx]
        strip_px = (hi - lo) * spec.width
        model = (
            GMMBackground((hi - lo, spec.width)) if cfg.execute_data else None
        )
        state = runtime.machine.allocate(
            max(1, strip_px * GMM_STATE_BYTES_PER_PIXEL), f"gmm_state{idx}"
        )
        work_h = h_split_work[idx]
        piece_h = h_split_piece[idx]

        def gen(op):
            for _ in range(cfg.frames):
                yield from work_h.acquire()
                yield from piece_h.acquire()
                # Zero-copy split: read the strip straight from the
                # producer's frame buffer.
                yield Touch(loc_frame.buffer,
                            strip_px * FRAME_BYTES_PER_PIXEL)
                yield Touch(state, write=True)
                yield Compute(GMM_FLOPS_PER_PIXEL * strip_px)
                yield piece_h.touch()
                if cfg.execute_data:
                    piece_h.store(model.apply(work_h.map()[lo:hi]))
                work_h.release()
                piece_h.release()

        return gen(op)

    def filter_body(op, h_in, h_out, fn):
        for _ in range(cfg.frames):
            yield from h_in.acquire()
            yield from h_out.acquire()
            yield h_in.touch()
            yield Compute(MORPH_FLOPS_PER_PIXEL * px)
            yield h_out.touch()
            if cfg.execute_data:
                h_out.store(fn(h_in.map()))
            h_in.release()
            h_out.release()

    def ccl_body(op):
        for _ in range(cfg.frames):
            yield from h_ccl_in.acquire()
            yield from h_ccl_work.acquire()
            yield h_ccl_in.touch(DESCRIPTOR_BYTES)
            yield h_ccl_work.touch(DESCRIPTOR_BYTES)
            if cfg.execute_data:
                h_ccl_work.store(h_ccl_in.map())
            h_ccl_work.release()
            h_ccl_in.release()
            yield from h_ccl_labels.acquire()
            strips = []
            for h in h_ccl_pieces:
                yield from h.acquire()
                yield h.touch()
                if cfg.execute_data:
                    strips.append(h.map())
                h.release()
            yield Compute(ASSEMBLY_FLOPS_PER_PIXEL * px)
            yield h_ccl_labels.touch()
            if cfg.execute_data:
                _, comps = merge_strip_labels(
                    ccl_bounds, strips, (spec.height, spec.width)
                )
                h_ccl_labels.store(comps)
            h_ccl_labels.release()

    def ccl_split_body(op, idx):
        lo, hi = ccl_bounds[idx]
        strip_px = (hi - lo) * spec.width
        work_h = h_cclsplit_work[idx]
        piece_h = h_cclsplit_piece[idx]

        def gen(op):
            for _ in range(cfg.frames):
                yield from work_h.acquire()
                yield from piece_h.acquire()
                # Zero-copy split of the final dilated mask.
                yield Touch(loc_dilated[-1].buffer, strip_px)
                yield Compute(CCL_FLOPS_PER_PIXEL * strip_px)
                yield piece_h.touch()
                if cfg.execute_data:
                    piece_h.store(label(work_h.map()[lo:hi])[0])
                work_h.release()
                piece_h.release()

        return gen(op)

    def track_body(op):
        tracker = CentroidTracker() if cfg.execute_data else None
        for _ in range(cfg.frames):
            yield from h_track_in.acquire()
            yield from h_track_out.acquire()
            yield h_track_in.touch()
            yield Compute(TRACK_FLOPS_PER_COMPONENT * 10)
            yield h_track_out.touch()
            if cfg.execute_data:
                tracker.update(h_track_in.map())
                h_track_out.store(tracker.summary())
            h_track_in.release()
            h_track_out.release()

    def consumer_body(op):
        for _ in range(cfg.frames):
            yield from h_cons_in.acquire()
            yield h_cons_in.touch()
            yield Compute(CONSUMER_FLOPS_PER_PIXEL * px)
            if cfg.execute_data:
                out["tracks"].append(list(h_cons_in.map()))
            h_cons_in.release()
            out["frames_done"] += 1

    t_producer.set_body(producer_body)
    t_gmm.set_body(gmm_body)
    t_erode.set_body(
        lambda op: filter_body(op, h_erode_in, h_erode_out, erode3)
    )
    for k, t in enumerate(t_dilate):
        t.set_body(
            lambda op, k=k: filter_body(
                op, h_dilate_in[k], h_dilate_out[k], dilate3
            )
        )
    t_ccl.set_body(ccl_body)
    t_track.set_body(track_body)
    t_consumer.set_body(consumer_body)
    for i, t in enumerate(t_gmm_split):
        t.set_body(lambda op, i=i: gmm_split_body(op, i))
    for i, t in enumerate(t_ccl_split):
        t.set_body(lambda op, i=i: ccl_split_body(op, i))

    return out


def run_orwl_video(
    topology: Topology,
    cfg: VideoConfig,
    *,
    affinity: bool,
    model: CostModel | None = None,
    seed: int = 0,
    core: str = "auto",
) -> tuple[RunResult, dict]:
    """Execute the ORWL pipeline; returns (result, outputs).

    ``outputs["tracks"]`` holds per-frame track summaries in data mode;
    FPS of Fig. 6 is ``cfg.frames / result.seconds``.
    """
    runtime = Runtime(topology, affinity=affinity, model=model, seed=seed,
                      core=core)
    out = build_orwl_video(runtime, cfg)
    result = runtime.run()
    return result, out


# -- sequential reference (pure algorithms, no simulation) ---------------------------


def run_sequential_reference(cfg: VideoConfig) -> list[list]:
    """Run the real pipeline frame by frame in plain Python.

    Ground truth for the ORWL pipeline's data mode: per-frame tracker
    summaries.
    """
    spec = cfg.spec
    src = VideoSource(spec, n_objects=cfg.n_objects, seed=cfg.seed)
    gmm = GMMBackground((spec.height, spec.width))
    tracker = CentroidTracker()
    outputs: list[list] = []
    for _ in range(cfg.frames):
        frame = src.next_frame()
        mask = gmm.apply(frame)
        mask = erode3(mask)
        for _ in range(cfg.n_dilate):
            mask = dilate3(mask)
        _, comps = label(mask)
        tracker.update(comps)
        outputs.append(tracker.summary())
    return outputs


# -- OpenMP and sequential performance variants ------------------------------------------


def run_openmp_video(
    topology: Topology,
    cfg: VideoConfig,
    n_threads: int,
    *,
    binding: str | None,
    model: CostModel | None = None,
    seed: int = 0,
    core: str = "auto",
    attach: Callable[[OpenMPRuntime], None] | None = None,
) -> OMPResult:
    """Fork-join variant: per frame, each heavy stage is a parallel_for
    over strips with a barrier — no cross-frame pipelining, master-homed
    buffers (the paper's OpenMP comparison point)."""
    omp = OpenMPRuntime(topology, n_threads, binding=binding, model=model,
                        seed=seed, core=core)
    spec = cfg.spec
    px = spec.pixels

    def master(rt: OpenMPRuntime):
        frame = rt.allocate(px, "frame")
        mask = rt.allocate(px, "mask")
        state = rt.allocate(px * GMM_STATE_BYTES_PER_PIXEL, "gmm_state")
        labels = rt.allocate(4 * px, "labels")
        yield Touch(frame, write=True)
        yield Touch(state, write=True)

        n_strips = n_threads

        def gmm_chunk(i):
            strip = px / n_strips
            yield Touch(frame, strip)
            yield Touch(state, strip * GMM_STATE_BYTES_PER_PIXEL, write=True)
            yield Compute(GMM_FLOPS_PER_PIXEL * strip)
            yield Touch(mask, strip, write=True)

        def morph_chunk(i):
            strip = px / n_strips
            yield Touch(mask, strip)
            yield Compute(MORPH_FLOPS_PER_PIXEL * strip)
            yield Touch(mask, strip, write=True)

        def ccl_chunk(i):
            strip = px / n_strips
            yield Touch(mask, strip)
            yield Compute(CCL_FLOPS_PER_PIXEL * strip)
            yield Touch(labels, 4 * strip, write=True)

        for _ in range(cfg.frames):
            # Producer (serial on the master).
            yield Compute(PRODUCER_FLOPS_PER_PIXEL * px)
            yield Touch(frame, write=True)
            yield from rt.parallel_for(n_strips, gmm_chunk)
            for _ in range(1 + cfg.n_dilate):  # erode + dilates
                yield from rt.parallel_for(n_strips, morph_chunk)
            yield from rt.parallel_for(n_strips, ccl_chunk)
            # Tracking + consumer (serial).
            yield Compute(TRACK_FLOPS_PER_COMPONENT * 10)
            yield Compute(CONSUMER_FLOPS_PER_PIXEL * px)

    if attach is not None:
        attach(omp)
    return omp.run(master)


def run_sequential_video(
    topology: Topology,
    cfg: VideoConfig,
    *,
    model: CostModel | None = None,
    seed: int = 0,
) -> OMPResult:
    """Single-thread baseline of Fig. 6 (all stages serial on one core)."""
    return run_openmp_video(
        topology, cfg, 1, binding="close", model=model, seed=seed
    )
