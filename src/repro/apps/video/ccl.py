"""Connected-component labeling: two-pass union-find over row runs.

4-connectivity. The first pass scans each row into maximal runs of set
pixels and unions runs that overlap runs of the previous row; the second
pass writes resolved labels. Runs (not pixels) are the union-find items,
which keeps the Python-level work proportional to the number of runs.

``label_strips`` exposes the split-friendly variant used by the ORWL
pipeline's 4-way CCL split: strips are labeled independently, then merged
along the seams — same result as labeling the whole mask at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

__all__ = [
    "Component",
    "label",
    "label_strips",
    "merge_strip_labels",
    "strip_bounds",
    "CCL_FLOPS_PER_PIXEL",
]

#: Per-pixel scan cost for the model (run-based two-pass labeling).
CCL_FLOPS_PER_PIXEL = 6.0


@dataclass(frozen=True)
class Component:
    """One connected component: bounding box, area, centroid."""

    label: int
    area: int
    bbox: tuple[int, int, int, int]  # (y0, x0, y1, x1), half-open
    centroid: tuple[float, float]  # (cy, cx)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: list[int] = []

    def make(self) -> int:
        self.parent.append(len(self.parent))
        return len(self.parent) - 1

    def find(self, a: int) -> int:
        root = a
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[a] != root:
            self.parent[a], a = root, self.parent[a]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            if rb < ra:
                ra, rb = rb, ra
            self.parent[rb] = ra
        return ra


def _row_runs(row: np.ndarray) -> list[tuple[int, int]]:
    """Maximal (start, stop) runs of True in a 1-D boolean row."""
    idx = np.flatnonzero(np.diff(np.concatenate(([0], row.view(np.int8), [0]))))
    return [(int(idx[i]), int(idx[i + 1])) for i in range(0, len(idx), 2)]


def label(mask: np.ndarray) -> tuple[np.ndarray, list[Component]]:
    """Label a boolean mask; returns (int32 label image, components).

    Labels are 1-based and assigned in scan order of their first pixel;
    0 is background.
    """
    if mask.ndim != 2:
        raise ReproError("mask must be 2-D")
    mask = mask.astype(bool, copy=False)
    h, w = mask.shape
    uf = _UnionFind()
    run_sets: list[list[tuple[int, int, int]]] = []  # per row: (start, stop, set id)
    prev: list[tuple[int, int, int]] = []
    for y in range(h):
        current: list[tuple[int, int, int]] = []
        for start, stop in _row_runs(mask[y]):
            sid = uf.make()
            # Union with 4-connected overlapping runs of the previous row.
            for pstart, pstop, psid in prev:
                if pstart < stop and start < pstop:
                    sid = uf.union(sid, psid)
            current.append((start, stop, sid))
        run_sets.append(current)
        prev = current

    labels = np.zeros((h, w), dtype=np.int32)
    root_to_label: dict[int, int] = {}
    stats: dict[int, list[float]] = {}
    for y, runs in enumerate(run_sets):
        for start, stop, sid in runs:
            root = uf.find(sid)
            lab = root_to_label.setdefault(root, len(root_to_label) + 1)
            labels[y, start:stop] = lab
            n = stop - start
            s = stats.setdefault(lab, [0, y, start, y + 1, stop, 0.0, 0.0])
            s[0] += n
            s[1] = min(s[1], y)
            s[2] = min(s[2], start)
            s[3] = max(s[3], y + 1)
            s[4] = max(s[4], stop)
            s[5] += n * y
            s[6] += (start + stop - 1) * n / 2.0

    components = [
        Component(
            label=lab,
            area=int(s[0]),
            bbox=(int(s[1]), int(s[2]), int(s[3]), int(s[4])),
            centroid=(s[5] / s[0], s[6] / s[0]),
        )
        for lab, s in sorted(stats.items())
    ]
    return labels, components


def label_strips(mask: np.ndarray, n_strips: int) -> tuple[np.ndarray, list[Component]]:
    """Label via *n_strips* horizontal strips + seam merge.

    Equivalent to :func:`label` up to label renumbering; components are
    returned in the same canonical (first-pixel scan) order. This is the
    algorithmic core of the pipeline's CCL split.
    """
    bounds = strip_bounds(mask.shape[0], n_strips)
    strip_labels = [label(mask[lo:hi])[0] for lo, hi in bounds]
    return merge_strip_labels(bounds, strip_labels, mask.shape)


def strip_bounds(height: int, n_strips: int) -> list[tuple[int, int]]:
    """Near-equal horizontal (lo, hi) strip boundaries."""
    if n_strips < 1:
        raise ReproError("n_strips must be >= 1")
    if n_strips > height:
        raise ReproError("more strips than rows")
    return [
        (s * height // n_strips, (s + 1) * height // n_strips)
        for s in range(n_strips)
    ]


def merge_strip_labels(
    bounds: list[tuple[int, int]],
    strip_labels: list[np.ndarray],
    shape: tuple[int, int],
) -> tuple[np.ndarray, list[Component]]:
    """Merge independently-labeled strips along their seams.

    Produces labels identical to :func:`label` on the whole mask (labels
    are assigned in global scan order of each component's first pixel).
    """
    if len(bounds) != len(strip_labels):
        raise ReproError("bounds/strip_labels length mismatch")
    merged = np.zeros(shape, dtype=np.int32)
    mapping: dict[tuple[int, int], int] = {}
    uf = _UnionFind()
    for si, ((lo, hi), sl) in enumerate(zip(bounds, strip_labels)):
        if sl.shape != (hi - lo, shape[1]):
            raise ReproError(f"strip {si} has shape {sl.shape}")
        for lab in range(1, int(sl.max()) + 1 if sl.size else 1):
            mapping[(si, lab)] = uf.make()
    # Union 4-connected labels across each seam.
    for si in range(1, len(bounds)):
        lo_prev, hi_prev = bounds[si - 1]
        lo_cur, _ = bounds[si]
        if hi_prev != lo_cur:
            raise ReproError("strips must tile the mask")
        top = strip_labels[si - 1][-1]
        bottom = strip_labels[si][0]
        for x in range(shape[1]):
            if top[x] and bottom[x]:
                uf.union(
                    mapping[(si - 1, int(top[x]))], mapping[(si, int(bottom[x]))]
                )
    # Resolve to canonical labels in global scan order.
    next_label = 1
    root_to_final: dict[int, int] = {}
    for si, ((lo, hi), sl) in enumerate(zip(bounds, strip_labels)):
        for y in range(hi - lo):
            row = sl[y]
            for x in np.flatnonzero(row):
                root = uf.find(mapping[(si, int(row[x]))])
                final = root_to_final.get(root)
                if final is None:
                    final = root_to_final[root] = next_label
                    next_label += 1
                merged[lo + y, x] = final
    return merged, _components_from_labels(merged)


def _components_from_labels(labels: np.ndarray) -> list[Component]:
    comps = []
    for lab in range(1, int(labels.max()) + 1 if labels.size else 1):
        ys, xs = np.nonzero(labels == lab)
        if len(ys) == 0:
            continue
        comps.append(
            Component(
                label=lab,
                area=len(ys),
                bbox=(int(ys.min()), int(xs.min()), int(ys.max()) + 1, int(xs.max()) + 1),
                centroid=(float(ys.mean()), float(xs.mean())),
            )
        )
    return comps
