"""HD video tracking — the real-world streaming application (Sec. V-C).

A synchronous data-flow pipeline (Fig. 3): producer → GMM
foreground/background extraction (split 16) → erode → dilate ×4 →
connected-component labeling (split 4) → tracking → consumer, expressed
as 30 ORWL tasks (the ids of Figs. 1–2).

The imaging substrate is real and tested: synthetic video generation
(:mod:`frames`), Gaussian-mixture background subtraction (:mod:`gmm`),
binary morphology (:mod:`morphology`), two-pass union-find labeling
(:mod:`ccl`) and a centroid tracker (:mod:`tracking`). The camera feed
the paper used is substituted by the deterministic synthetic generator
(see DESIGN.md).
"""

from repro.apps.video.frames import FRAME_FORMATS, FrameSpec, VideoSource
from repro.apps.video.pipeline import (
    VideoConfig,
    run_openmp_video,
    run_orwl_video,
    run_sequential_video,
)

__all__ = [
    "FrameSpec",
    "FRAME_FORMATS",
    "VideoSource",
    "VideoConfig",
    "run_orwl_video",
    "run_openmp_video",
    "run_sequential_video",
]
