"""Binary morphology: 3×3 erode / dilate on boolean masks.

Implemented with shifted views (no scipy dependency): a pixel survives an
erosion iff its whole 3×3 neighbourhood is set; dilation is the dual.
Border pixels use zero padding, the usual convention for foreground
masks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["erode3", "dilate3", "MORPH_FLOPS_PER_PIXEL"]

#: Bitwise neighbourhood ops vectorize to ~2 effective flops per pixel;
#: morphology is a memory-bound streaming stage.
MORPH_FLOPS_PER_PIXEL = 2.0


def _check(mask: np.ndarray) -> np.ndarray:
    if mask.ndim != 2:
        raise ReproError(f"mask must be 2-D, got {mask.ndim}-D")
    return mask.astype(bool, copy=False)


def _padded(mask: np.ndarray, fill: bool) -> np.ndarray:
    out = np.full(
        (mask.shape[0] + 2, mask.shape[1] + 2), fill, dtype=bool
    )
    out[1:-1, 1:-1] = mask
    return out


def erode3(mask: np.ndarray) -> np.ndarray:
    """3×3 erosion with zero padding (border pixels erode away)."""
    m = _padded(_check(mask), False)
    out = np.ones(mask.shape, dtype=bool)
    for dy in (0, 1, 2):
        for dx in (0, 1, 2):
            out &= m[dy : dy + mask.shape[0], dx : dx + mask.shape[1]]
    return out


def dilate3(mask: np.ndarray) -> np.ndarray:
    """3×3 dilation with zero padding."""
    m = _padded(_check(mask), False)
    out = np.zeros(mask.shape, dtype=bool)
    for dy in (0, 1, 2):
        for dx in (0, 1, 2):
            out |= m[dy : dy + mask.shape[0], dx : dx + mask.shape[1]]
    return out
