"""Synthetic video: moving objects over a noisy static background.

Substitutes the paper's camera feed (see DESIGN.md): deterministic,
seedable, with a configurable number of rectangular objects moving on
linear trajectories that bounce off the frame edges — easy for a tracker
to follow, so tracking output is exactly checkable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.util.rng import make_rng

__all__ = ["FrameSpec", "FRAME_FORMATS", "MovingObject", "VideoSource"]


@dataclass(frozen=True)
class FrameSpec:
    """Frame geometry; one byte per pixel (grayscale)."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 8 or self.height < 8:
            raise ReproError("frames must be at least 8x8")

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def nbytes(self) -> int:
        return self.pixels  # uint8


#: The three resolutions of Fig. 6.
FRAME_FORMATS: dict[str, FrameSpec] = {
    "HD": FrameSpec(1280, 720),
    "FullHD": FrameSpec(1920, 1080),
    "4K": FrameSpec(3840, 2160),
}


@dataclass
class MovingObject:
    """A bright rectangle on a linear, edge-bouncing trajectory."""

    x: float
    y: float
    vx: float
    vy: float
    w: int
    h: int
    intensity: int

    def step(self, spec: FrameSpec) -> None:
        self.x += self.vx
        self.y += self.vy
        if not 0 <= self.x <= spec.width - self.w:
            self.vx = -self.vx
            self.x = min(max(self.x, 0), spec.width - self.w)
        if not 0 <= self.y <= spec.height - self.h:
            self.vy = -self.vy
            self.y = min(max(self.y, 0), spec.height - self.h)

    def paint(self, frame: np.ndarray) -> None:
        x, y = int(self.x), int(self.y)
        frame[y : y + self.h, x : x + self.w] = self.intensity


class VideoSource:
    """Deterministic frame generator."""

    def __init__(
        self,
        spec: FrameSpec,
        *,
        n_objects: int = 3,
        noise: float = 2.0,
        background: int = 60,
        seed: int = 0,
    ) -> None:
        if n_objects < 0:
            raise ReproError("n_objects must be >= 0")
        self.spec = spec
        self.noise = float(noise)
        self.background = int(background)
        rng = make_rng(seed)
        self._rng = rng
        self.objects: list[MovingObject] = []
        for _ in range(n_objects):
            w = int(rng.integers(spec.width // 16, spec.width // 8 + 1))
            h = int(rng.integers(spec.height // 16, spec.height // 8 + 1))
            self.objects.append(
                MovingObject(
                    x=float(rng.integers(0, max(1, spec.width - w))),
                    y=float(rng.integers(0, max(1, spec.height - h))),
                    vx=float(rng.uniform(1.0, 3.0)) * (1 if rng.random() < 0.5 else -1),
                    vy=float(rng.uniform(1.0, 3.0)) * (1 if rng.random() < 0.5 else -1),
                    w=w,
                    h=h,
                    intensity=int(rng.integers(180, 250)),
                )
            )
        self.frame_index = 0

    def next_frame(self) -> np.ndarray:
        """The next uint8 frame; objects advance one step per call."""
        spec = self.spec
        frame = np.full((spec.height, spec.width), self.background, dtype=np.float64)
        if self.noise > 0:
            frame += self._rng.normal(0.0, self.noise, frame.shape)
        for obj in self.objects:
            obj.step(spec)
            obj.paint(frame)
        self.frame_index += 1
        return np.clip(frame, 0, 255).astype(np.uint8)

    def frames(self, count: int):
        """Yield *count* consecutive frames."""
        for _ in range(count):
            yield self.next_frame()
