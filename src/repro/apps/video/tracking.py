"""Centroid tracker: follow components across frames.

Greedy nearest-centroid matching with a maximum jump distance; unmatched
components open new tracks, unmatched tracks survive ``max_missed``
frames before being closed. Deterministic (matching processed in
component order), so pipeline runs are exactly comparable to sequential
reference runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.video.ccl import Component
from repro.errors import ReproError

__all__ = ["Track", "CentroidTracker", "TRACK_FLOPS_PER_COMPONENT"]

TRACK_FLOPS_PER_COMPONENT = 200.0


@dataclass
class Track:
    """One tracked object."""

    track_id: int
    centroid: tuple[float, float]
    area: int
    age: int = 1
    missed: int = 0
    history: list[tuple[float, float]] = field(default_factory=list)

    def advance(self, comp: Component) -> None:
        self.history.append(self.centroid)
        self.centroid = comp.centroid
        self.area = comp.area
        self.age += 1
        self.missed = 0


class CentroidTracker:
    """Stateful frame-to-frame matcher."""

    def __init__(
        self,
        *,
        max_distance: float = 80.0,
        max_missed: int = 5,
        min_area: int = 4,
    ) -> None:
        if max_distance <= 0:
            raise ReproError("max_distance must be positive")
        self.max_distance = max_distance
        self.max_missed = max_missed
        self.min_area = min_area
        self.tracks: list[Track] = []
        self._next_id = 1

    def update(self, components: list[Component]) -> list[Track]:
        """Consume one frame's components; returns the live tracks."""
        cands = [c for c in components if c.area >= self.min_area]
        unmatched_tracks = list(self.tracks)
        for comp in cands:
            best: Track | None = None
            best_d2 = self.max_distance**2
            for tr in unmatched_tracks:
                d2 = (tr.centroid[0] - comp.centroid[0]) ** 2 + (
                    tr.centroid[1] - comp.centroid[1]
                ) ** 2
                if d2 <= best_d2:
                    best, best_d2 = tr, d2
            if best is not None:
                best.advance(comp)
                unmatched_tracks.remove(best)
            else:
                self.tracks.append(
                    Track(
                        track_id=self._next_id,
                        centroid=comp.centroid,
                        area=comp.area,
                    )
                )
                self._next_id += 1
        for tr in unmatched_tracks:
            tr.missed += 1
        self.tracks = [t for t in self.tracks if t.missed <= self.max_missed]
        return list(self.tracks)

    def summary(self) -> list[tuple[int, tuple[float, float], int]]:
        """Comparable state snapshot: (id, centroid, age) per live track."""
        return [(t.track_id, t.centroid, t.age) for t in self.tracks]
