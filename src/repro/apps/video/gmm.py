"""Gaussian-mixture background subtraction (foreground extraction).

A vectorized per-pixel background model in the spirit of Stauffer-Grimson
as used by the paper's tracking algorithm [16]: each pixel keeps a
running background mean and variance; pixels farther than
``threshold_sigma`` standard deviations from the background are
foreground; background statistics adapt with learning rate ``alpha``
(foreground pixels adapt much more slowly, so stopped objects only
gradually melt into the background).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["GMMBackground", "GMM_FLOPS_PER_PIXEL", "GMM_STATE_BYTES_PER_PIXEL"]

#: Cost-model constants: distance, variance update, threshold per pixel.
GMM_FLOPS_PER_PIXEL = 30.0
#: mean + variance as float64.
GMM_STATE_BYTES_PER_PIXEL = 16


class GMMBackground:
    """Adaptive background model over a (strip of a) frame."""

    def __init__(
        self,
        shape: tuple[int, int],
        *,
        alpha: float = 0.05,
        threshold_sigma: float = 3.5,
        initial_variance: float = 36.0,
        min_variance: float = 4.0,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ReproError("alpha must be in (0, 1]")
        if threshold_sigma <= 0:
            raise ReproError("threshold_sigma must be positive")
        self.alpha = alpha
        self.threshold_sigma = threshold_sigma
        self.min_variance = min_variance
        self.mean: np.ndarray | None = None
        self.var = np.full(shape, float(initial_variance))
        self.shape = shape

    def apply(self, strip: np.ndarray) -> np.ndarray:
        """Classify *strip* (uint8) → boolean foreground mask; adapt model."""
        if strip.shape != self.shape:
            raise ReproError(
                f"strip shape {strip.shape} != model shape {self.shape}"
            )
        x = strip.astype(np.float64)
        if self.mean is None:
            # Bootstrap: the first frame is taken as background.
            self.mean = x.copy()
            return np.zeros(self.shape, dtype=bool)
        dist2 = (x - self.mean) ** 2
        fg = dist2 > (self.threshold_sigma**2) * self.var
        # Adapt: background pixels at full rate, foreground very slowly.
        rate = np.where(fg, self.alpha * 0.05, self.alpha)
        self.mean += rate * (x - self.mean)
        self.var += rate * (dist2 - self.var)
        np.maximum(self.var, self.min_variance, out=self.var)
        return fg
