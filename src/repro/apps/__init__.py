"""The paper's three evaluation applications.

* :mod:`repro.apps.lk23` — Livermore Kernel 23, a 2-D implicit
  hydrodynamics stencil, pipelined over matrix blocks (memory bound);
* :mod:`repro.apps.matmul` — block-cyclic dense matrix multiplication
  (compute bound);
* :mod:`repro.apps.video` — the HD video-tracking data-flow pipeline
  (streaming, Fig. 3).

Every app provides an ORWL implementation (which the affinity module
optimizes *without any app change*), the OpenMP/MKL reference
implementation, and — at small sizes — real data execution validated
against a sequential reference.
"""

__all__ = ["lk23", "matmul", "video"]
