"""hwloc-style CPU-set bitmaps.

A :class:`Bitmap` is an immutable set of non-negative integer indices
(processing-unit numbers). It mirrors the subset of ``hwloc_bitmap_*``
operations that topology traversal and binding need: union, intersection,
difference, inclusion tests, first/last, iteration, and the classic
hwloc list syntax (``"0-3,8,10-11"``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["Bitmap"]


class Bitmap:
    """An immutable set of PU indices backed by an int used as a bit field.

    Instances support ``&``, ``|``, ``-``, ``^``, comparison by value, and
    iteration in increasing index order.

    >>> Bitmap.from_list("0-2,5")
    Bitmap('0-2,5')
    >>> Bitmap([0, 1]) | Bitmap([2])
    Bitmap('0-2')
    """

    __slots__ = ("_bits",)

    def __init__(self, indices: Iterable[int] = ()) -> None:
        bits = 0
        for i in indices:
            if i < 0:
                raise ValueError(f"bitmap indices must be >= 0, got {i}")
            bits |= 1 << i
        object.__setattr__(self, "_bits", bits)

    # -- constructors ------------------------------------------------------

    @classmethod
    def _from_bits(cls, bits: int) -> Bitmap:
        bm = cls.__new__(cls)
        object.__setattr__(bm, "_bits", bits)
        return bm

    @classmethod
    def from_list(cls, text: str) -> Bitmap:
        """Parse hwloc list syntax, e.g. ``"0-3,8,10-11"`` or ``""``."""
        bits = 0
        text = text.strip()
        if text:
            for part in text.split(","):
                part = part.strip()
                if "-" in part:
                    lo_s, hi_s = part.split("-", 1)
                    lo, hi = int(lo_s), int(hi_s)
                    if hi < lo:
                        raise ValueError(f"descending range {part!r}")
                    bits |= ((1 << (hi - lo + 1)) - 1) << lo
                else:
                    bits |= 1 << int(part)
        return cls._from_bits(bits)

    @classmethod
    def range(cls, start: int, stop: int) -> Bitmap:
        """Half-open range ``[start, stop)``, like :func:`range`."""
        if stop <= start:
            return cls._from_bits(0)
        return cls._from_bits(((1 << (stop - start)) - 1) << start)

    @classmethod
    def single(cls, index: int) -> Bitmap:
        if index < 0:
            raise ValueError("index must be >= 0")
        return cls._from_bits(1 << index)

    # -- queries -----------------------------------------------------------

    def __contains__(self, index: int) -> bool:
        return index >= 0 and bool(self._bits >> index & 1)

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __bool__(self) -> bool:
        return self._bits != 0

    def __iter__(self) -> Iterator[int]:
        # Lowest-set-bit extraction: O(popcount) per full walk, not
        # O(highest index) — singleton cpusets of high PUs are the
        # scheduler's common case.
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def first(self) -> int:
        """Lowest set index; -1 when empty (hwloc convention)."""
        if not self._bits:
            return -1
        return (self._bits & -self._bits).bit_length() - 1

    def last(self) -> int:
        """Highest set index; -1 when empty."""
        if not self._bits:
            return -1
        return self._bits.bit_length() - 1

    def issubset(self, other: Bitmap) -> bool:
        return self._bits & ~other._bits == 0

    def isdisjoint(self, other: Bitmap) -> bool:
        return self._bits & other._bits == 0

    def intersects(self, other: Bitmap) -> bool:
        return not self.isdisjoint(other)

    # -- algebra -----------------------------------------------------------

    def __and__(self, other: Bitmap) -> Bitmap:
        return Bitmap._from_bits(self._bits & other._bits)

    def __or__(self, other: Bitmap) -> Bitmap:
        return Bitmap._from_bits(self._bits | other._bits)

    def __sub__(self, other: Bitmap) -> Bitmap:
        return Bitmap._from_bits(self._bits & ~other._bits)

    def __xor__(self, other: Bitmap) -> Bitmap:
        return Bitmap._from_bits(self._bits ^ other._bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self._bits == other._bits

    def __hash__(self) -> int:
        return hash(("Bitmap", self._bits))

    # -- rendering ---------------------------------------------------------

    def to_list(self) -> str:
        """Render in hwloc list syntax (inverse of :meth:`from_list`)."""
        runs: list[str] = []
        run_start: int | None = None
        prev = -2
        for i in self:
            if i != prev + 1:
                if run_start is not None:
                    runs.append(_render_run(run_start, prev))
                run_start = i
            prev = i
        if run_start is not None:
            runs.append(_render_run(run_start, prev))
        return ",".join(runs)

    def __repr__(self) -> str:
        return f"Bitmap({self.to_list()!r})"


def _render_run(start: int, stop: int) -> str:
    return str(start) if start == stop else f"{start}-{stop}"
