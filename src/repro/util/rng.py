"""Deterministic random-number helpers.

Everything stochastic in the library (synthetic video, scheduler jitter,
workload generators) derives its generator from :func:`make_rng` so that
experiments are reproducible run-to-run.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["make_rng", "derive_rng"]


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded deterministically."""
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *keys: int | str) -> np.random.Generator:
    """Derive an independent child generator from *rng* and a key tuple.

    Hashing the keys keeps child streams stable even if the order in which
    different subsystems draw from the parent changes.
    """
    material = "/".join(str(k) for k in keys).encode()
    digest = hashlib.sha256(b"repro.rng/" + material).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    mix = int(rng.integers(0, 2**31))
    return np.random.default_rng((child_seed, mix))
