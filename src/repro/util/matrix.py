"""Dense symmetric-matrix helpers used by the communication-matrix code.

TreeMatch treats communication as undirected affinity, so matrices are
symmetrized before grouping. These helpers keep that logic in one place.
"""

from __future__ import annotations

import numpy as np

__all__ = ["symmetrize", "check_square", "zero_diagonal", "submatrix"]


def check_square(m: np.ndarray, *, name: str = "matrix") -> np.ndarray:
    """Validate that *m* is a finite, non-negative 2-D square array."""
    a = np.asarray(m, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"{name} must be square 2-D, got shape {a.shape}")
    if not np.isfinite(a).all():
        raise ValueError(f"{name} contains non-finite entries")
    if (a < 0).any():
        raise ValueError(f"{name} contains negative entries")
    return a


def symmetrize(m: np.ndarray) -> np.ndarray:
    """Return ``m + m.T`` — total traffic regardless of direction."""
    a = check_square(m)
    return a + a.T


def zero_diagonal(m: np.ndarray) -> np.ndarray:
    """Copy of *m* with self-communication removed."""
    a = check_square(m).copy()
    np.fill_diagonal(a, 0.0)
    return a


def submatrix(m: np.ndarray, indices: list[int]) -> np.ndarray:
    """Rows+columns of *m* restricted to *indices* (in the given order)."""
    a = check_square(m)
    idx = np.asarray(indices, dtype=np.intp)
    return a[np.ix_(idx, idx)]
