"""Small shared utilities: cpuset bitmaps, size parsing, matrix helpers."""

from repro.util.bitmap import Bitmap
from repro.util.units import format_size, parse_size

__all__ = ["Bitmap", "parse_size", "format_size"]
