"""Parsing and formatting of byte sizes in hwloc/Table-I notation.

Table I of the paper gives cache sizes as ``32K``, ``256K``, ``20480K``;
hwloc uses binary units (1K = 1024 bytes). :func:`parse_size` accepts that
notation plus ``M``/``G``/``T`` suffixes with an optional ``B``/``iB`` tail.
"""

from __future__ import annotations

__all__ = ["parse_size", "format_size"]

_SUFFIXES = {"": 1, "K": 1024, "M": 1024**2, "G": 1024**3, "T": 1024**4}


def parse_size(text: str | int | float) -> int:
    """Parse ``"32K"``-style sizes into bytes.

    Plain numbers pass through unchanged (floats are truncated).

    >>> parse_size("20480K")
    20971520
    >>> parse_size("6.5G")
    6979321856
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size must be >= 0, got {text}")
        return int(text)
    s = text.strip().upper()
    for tail in ("IB", "B"):
        if s.endswith(tail) and len(s) > len(tail):
            s = s[: -len(tail)]
            break
    suffix = ""
    if s and s[-1] in _SUFFIXES:
        suffix = s[-1]
        s = s[:-1]
    try:
        value = float(s)
    except ValueError as exc:
        raise ValueError(f"unparsable size {text!r}") from exc
    if value < 0:
        raise ValueError(f"size must be >= 0, got {text!r}")
    return int(value * _SUFFIXES[suffix])


def format_size(nbytes: int) -> str:
    """Render a byte count with the largest exact-ish binary suffix.

    >>> format_size(20971520)
    '20M'
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    for suffix in ("T", "G", "M", "K"):
        unit = _SUFFIXES[suffix]
        if nbytes >= unit and nbytes % unit == 0:
            return f"{nbytes // unit}{suffix}"
    for suffix in ("T", "G", "M", "K"):
        unit = _SUFFIXES[suffix]
        if nbytes >= 10 * unit:
            return f"{nbytes / unit:.1f}{suffix}"
    return str(nbytes)
