"""The job-based experiment executor.

Fans independent experiment cells out over a ``ProcessPoolExecutor``
(each simulation is a deterministic, single-threaded process — separate
interpreters sidestep the GIL entirely) and reassembles payloads in job
order, so the output of ``run_jobs`` is identical for any worker count.

Worker-count selection: explicit ``n_jobs`` argument, else the
``REPRO_JOBS`` environment variable, else 1 (inline execution, no pool).
A value of 0 means "one worker per CPU".

The on-disk :class:`~repro.parallel.cache.ResultCache` is consulted
before dispatch and written after: only cache misses reach the pool, and
a warm re-run touches no simulator code at all.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.errors import ReproError
from repro.parallel.cache import ResultCache
from repro.parallel.jobs import Job, run_cell

__all__ = ["run_jobs", "default_jobs", "JOBS_ENV"]

JOBS_ENV = "REPRO_JOBS"

_MISSING = object()


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (default 1; 0 ⇒ CPU count)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        n = int(raw)
    except ValueError:
        raise ReproError(f"{JOBS_ENV} must be an integer, got {raw!r}") from None
    if n < 0:
        raise ReproError(f"{JOBS_ENV} must be >= 0, got {n}")
    return n or (os.cpu_count() or 1)


def _resolve_cache(cache) -> ResultCache | None:
    if cache is None:
        return ResultCache.from_env()
    if cache is False:
        return None
    if cache is True:
        return ResultCache()
    return cache


def run_jobs(
    jobs: Sequence[Job],
    *,
    n_jobs: int | None = None,
    cache: ResultCache | bool | None = None,
) -> list:
    """Execute *jobs*; returns their payloads in job order.

    ``n_jobs``: worker processes (None ⇒ ``REPRO_JOBS``, 1 ⇒ inline).
    ``cache``: a :class:`ResultCache`, True (default cache), False
    (disabled), or None (``REPRO_CACHE``/``REPRO_CACHE_DIR`` decide).
    """
    n_jobs = default_jobs() if n_jobs is None else n_jobs
    if n_jobs < 1:
        n_jobs = os.cpu_count() or 1
    store = _resolve_cache(cache)

    results = [_MISSING] * len(jobs)
    cold: list[int] = []
    for i, job in enumerate(jobs):
        hit = store.get(job) if store is not None else None
        if hit is not None:
            results[i] = hit
        else:
            cold.append(i)

    if cold:
        if n_jobs > 1 and len(cold) > 1:
            workers = min(n_jobs, len(cold))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for i, payload in zip(
                    cold, pool.map(run_cell, [jobs[i] for i in cold])
                ):
                    results[i] = payload
        else:
            for i in cold:
                results[i] = run_cell(jobs[i])
        if store is not None:
            for i in cold:
                store.put(jobs[i], results[i])

    return results
