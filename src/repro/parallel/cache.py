"""Content-addressed on-disk cache for experiment-cell results.

A cell (one ``(machine, variant, config, seed)`` simulation) is pure: its
payload is fully determined by the job spec and the simulator source
tree. The cache therefore keys each entry by the SHA-256 of the job's
canonical JSON encoding and partitions the store by a digest of every
``src/repro/**/*.py`` file — editing any source file silently retires
the whole previous generation of entries, so a regeneration after a code
change never serves stale physics.

Layout::

    <cache root>/
        <source digest>/          # one generation per source tree state
            <aa>/                 # first two hex chars of the job key
                <job key>.json    # {"job": {...}, "payload": ...}

Environment:

* ``REPRO_CACHE_DIR`` — cache root (default ``~/.cache/repro-paper``);
* ``REPRO_CACHE=off|0|no`` — disable the cache entirely (the CLI's
  ``--no-cache`` flag sets the same switch per invocation).

Payloads are JSON (floats survive a dump/load round-trip bit-exactly),
so a warm-cache regeneration is byte-identical to the cold run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

__all__ = ["ResultCache", "source_digest", "default_cache_dir", "cache_enabled"]

_SOURCE_DIGEST: str | None = None


def source_digest() -> str:
    """Digest of the installed ``repro`` source tree (cached per process)."""
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _SOURCE_DIGEST = h.hexdigest()[:16]
    return _SOURCE_DIGEST


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` or the per-user default."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro-paper").expanduser()


def cache_enabled() -> bool:
    """False when ``REPRO_CACHE`` is set to off/0/no/false."""
    return os.environ.get("REPRO_CACHE", "on").strip().lower() not in (
        "off", "0", "no", "false",
    )


class ResultCache:
    """Content-addressed store for cell payloads.

    ``digest`` defaults to :func:`source_digest`; tests inject synthetic
    digests to exercise invalidation.
    """

    def __init__(self, root: Path | str | None = None, *, digest: str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.digest = digest if digest is not None else source_digest()
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_env(cls) -> "ResultCache | None":
        """The default cache, or None when ``REPRO_CACHE`` disables it."""
        if not cache_enabled():
            return None
        return cls()

    # -- keying ---------------------------------------------------------------

    def key(self, job) -> str:
        """Stable content key of *job* (independent of the source digest —
        the digest partitions the directory tree instead)."""
        blob = json.dumps(
            {
                "cell": job.cell,
                "params": list(job.params),
                "scale": list(job.scale),
                "seed": job.seed,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def path_for(self, job) -> Path:
        key = self.key(job)
        return self.root / self.digest / key[:2] / f"{key}.json"

    # -- access ---------------------------------------------------------------

    def get(self, job):
        """The cached payload, or None on a miss (corrupt entries = miss)."""
        path = self.path_for(job)
        try:
            with open(path) as fh:
                entry = json.load(fh)
            payload = entry["payload"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, job, payload) -> None:
        """Store *payload*; atomic rename so readers never see partials."""
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"job": job.to_dict(), "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ResultCache {self.root} gen={self.digest} "
            f"hits={self.hits} misses={self.misses}>"
        )
