"""Job specs and the registry of experiment cells.

A :class:`Job` is a pure, picklable description of one experiment cell —
the unit the executor fans out over worker processes and the cache keys
its entries by. Everything in it is a JSON-safe scalar: the cell name
(a registry key, never a function object), the problem scale flattened
to its parameter tuple, the cell parameters as sorted ``(name, value)``
pairs, and the seed.

Cells are registered once per figure/table *application* (LK23, matmul,
video) and return the full measurement of the simulated run — seconds,
GFLOP/s where meaningful, and the counter snapshot — so a Fig. 4 sweep
and a Table II row at the same configuration share one cache entry.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.experiments.runner import Scale

__all__ = ["Job", "CELLS", "make_job", "run_cell", "encode_scale", "decode_scale"]


def encode_scale(scale: Scale) -> tuple[tuple[str, Any], ...]:
    """Flatten a scale into sorted, hashable (field, value) pairs."""
    return tuple(sorted(dataclasses.asdict(scale).items()))


def decode_scale(pairs) -> Scale:
    return Scale(**dict(pairs))


@dataclass(frozen=True)
class Job:
    """One experiment cell: pure inputs, JSON-safe, picklable."""

    cell: str
    scale: tuple[tuple[str, Any], ...]
    params: tuple[tuple[str, Any], ...]
    seed: int

    def to_dict(self) -> dict:
        return {
            "cell": self.cell,
            "scale": dict(self.scale),
            "params": dict(self.params),
            "seed": self.seed,
        }

    def __repr__(self) -> str:  # pragma: no cover
        kv = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"<Job {self.cell}({kv}) seed={self.seed}>"


def make_job(cell: str, scale: Scale, params: dict, seed: int) -> Job:
    """Build a job, validating the cell name early (in the parent)."""
    if cell not in CELLS:
        raise ReproError(f"unknown cell {cell!r}; known: {sorted(CELLS)}")
    return Job(
        cell=cell,
        scale=encode_scale(scale),
        params=tuple(sorted(params.items())),
        seed=seed,
    )


def run_cell(job: Job):
    """Execute one job (in whatever process it lands on)."""
    try:
        fn = CELLS[job.cell]
    except KeyError:
        raise ReproError(
            f"unknown cell {job.cell!r}; known: {sorted(CELLS)}"
        ) from None
    return fn(scale=decode_scale(job.scale), seed=job.seed, **dict(job.params))


CELLS: dict[str, Callable[..., Any]] = {}


def _cell(name: str):
    def register(fn):
        CELLS[name] = fn
        return fn

    return register


def _counter_payload(counters) -> dict:
    """Counter fields in CounterRow units; switch/migration counts stay int."""
    return {
        "l3_misses": counters.l3_misses,
        "stalled_cycles": counters.stalled_cycles,
        "context_switches": counters.context_switches,
        "cpu_migrations": counters.cpu_migrations,
    }


# -- the three applications ----------------------------------------------------
#
# Variant slugs are canonical cache/dispatch keys; display labels ("ORWL
# (affinity)" vs "ORWL (Affinity)") stay in the figure/table assemblers.


@_cell("map-subtree")
def _map_subtree_cell(
    *, scale: Scale, seed: int, n: int, arities, indptr: str, indices: str,
    data: str,
) -> dict:
    """Order one subtree block of a multilevel mapping problem.

    The block's affinity submatrix travels as a base64 CSR triple (pure
    JSON-safe strings, so the job is picklable and cacheable like any
    other cell); the payload is the block's virtual-leaf order. *scale*
    and *seed* are part of the cell contract but unused — the mapping is
    deterministic in the matrix alone.
    """
    import base64

    import numpy as np

    from repro.treematch.mapping import map_order_block

    del scale, seed
    # frombuffer views are read-only; copy so scipy can canonicalize.
    ip = np.frombuffer(base64.b64decode(indptr), dtype=np.int64).copy()
    ix = np.frombuffer(base64.b64decode(indices), dtype=np.int64).copy()
    dv = np.frombuffer(base64.b64decode(data), dtype=np.float64).copy()
    return {"order": map_order_block(ip, ix, dv, n, arities)}


@_cell("lk23")
def _lk23_cell(*, scale: Scale, machine: str, variant: str, n_threads: int, seed: int) -> dict:
    from repro.apps.lk23 import Lk23Config, run_openmp_lk23, run_orwl_lk23
    from repro.topology import machine_by_name

    cfg = Lk23Config(
        n=scale.lk23_n, iterations=scale.lk23_iterations, n_threads=n_threads
    )
    topo = machine_by_name(machine)
    if variant == "orwl":
        res = run_orwl_lk23(topo, cfg, affinity=False, seed=seed)
    elif variant == "orwl-affinity":
        res = run_orwl_lk23(topo, cfg, affinity=True, seed=seed)
    elif variant == "openmp":
        res = run_openmp_lk23(topo, cfg, binding=None, seed=seed)
    elif variant == "openmp-affinity":
        res = run_openmp_lk23(topo, cfg, binding="close", seed=seed)
    else:
        raise ReproError(f"unknown lk23 variant {variant!r}")
    return {"seconds": res.seconds, "counters": _counter_payload(res.counters)}


@_cell("matmul")
def _matmul_cell(*, scale: Scale, machine: str, variant: str, n_tasks: int, seed: int) -> dict:
    from repro.apps.matmul import MatmulConfig, run_orwl_matmul
    from repro.openmp.mkl import threaded_dgemm
    from repro.topology import machine_by_name

    topo = machine_by_name(machine)
    if variant in ("orwl", "orwl-affinity"):
        res = run_orwl_matmul(
            topo,
            MatmulConfig(n=scale.matmul_n, n_tasks=n_tasks),
            affinity=(variant == "orwl-affinity"),
            seed=seed,
        )
    elif variant in ("mkl", "mkl-scatter", "mkl-compact"):
        binding = None if variant == "mkl" else variant.split("-", 1)[1]
        res = threaded_dgemm(topo, scale.matmul_n, n_tasks, binding=binding, seed=seed)
    else:
        raise ReproError(f"unknown matmul variant {variant!r}")
    return {
        "seconds": res.seconds,
        "gflops": res.gflops,
        "counters": _counter_payload(res.counters),
    }


@_cell("video")
def _video_cell(*, scale: Scale, machine: str, variant: str, resolution: str, seed: int) -> dict:
    from repro.apps.video import (
        VideoConfig,
        run_openmp_video,
        run_orwl_video,
        run_sequential_video,
    )
    from repro.topology import machine_by_name

    frames = scale.video_frames_4k if resolution == "4K" else scale.video_frames
    cfg = VideoConfig(resolution=resolution, frames=frames)
    topo = machine_by_name(machine)
    if variant == "sequential":
        res = run_sequential_video(topo, cfg, seed=seed)
    elif variant == "openmp":
        res = run_openmp_video(topo, cfg, 30, binding=None, seed=seed)
    elif variant == "openmp-affinity":
        res = run_openmp_video(topo, cfg, 30, binding="close", seed=seed)
    elif variant == "orwl":
        res, _ = run_orwl_video(topo, cfg, affinity=False, seed=seed)
    elif variant == "orwl-affinity":
        res, _ = run_orwl_video(topo, cfg, affinity=True, seed=seed)
    else:
        raise ReproError(f"unknown video variant {variant!r}")
    return {
        "seconds": res.seconds,
        "frames": frames,
        "counters": _counter_payload(res.counters),
    }
