"""Parallel, incremental experiment execution.

The substrate the figure/table regenerations ride on:

* :mod:`repro.parallel.jobs` — pure, picklable :class:`Job` specs and
  the registry of experiment cells (one per application);
* :mod:`repro.parallel.executor` — :func:`run_jobs`, the process-pool
  fan-out with deterministic, order-preserving reassembly
  (``REPRO_JOBS`` / ``--jobs``);
* :mod:`repro.parallel.cache` — the content-addressed on-disk result
  cache keyed by (cell, scale, params, seed) and partitioned by a
  source-tree digest (``REPRO_CACHE_DIR``, ``REPRO_CACHE=off``).

``run_jobs`` with one worker and no cache is behaviourally identical to
the historical sequential loops — same seeds, same floats, same order.
"""

from repro.parallel.cache import (
    ResultCache,
    cache_enabled,
    default_cache_dir,
    source_digest,
)
from repro.parallel.executor import JOBS_ENV, default_jobs, run_jobs
from repro.parallel.jobs import CELLS, Job, make_job, run_cell

__all__ = [
    "Job",
    "CELLS",
    "make_job",
    "run_cell",
    "run_jobs",
    "default_jobs",
    "JOBS_ENV",
    "ResultCache",
    "source_digest",
    "default_cache_dir",
    "cache_enabled",
]
