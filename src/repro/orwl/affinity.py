"""The affinity add-on — the paper's contribution (Sec. IV).

Fully automatic: with ``ORWL_AFFINITY=1`` (or ``Runtime(affinity=True)``)
the three steps below run transparently at startup. The advanced API
exposes them individually for debugging and for dynamic re-mapping when
the task/location graph changes at run time:

* :meth:`AffinityModule.dependency_get` — extract the communication
  matrix from the declared handles (no app code runs);
* :meth:`AffinityModule.affinity_compute` — Algorithm 1 (TreeMatch with
  control-thread and oversubscription adaptations) against the hwloc-style
  topology;
* :meth:`AffinityModule.affinity_set` — bind every compute thread to its
  PU and every control thread per the control plan (hyperthread siblings,
  spare cores, or left to the OS).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ORWLError
from repro.orwl.dependency import dependency_matrix
from repro.treematch.commmatrix import CommunicationMatrix
from repro.treematch.mapping import Placement, treematch_map
from repro.util.bitmap import Bitmap

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.runtime import Runtime

__all__ = ["AffinityModule"]


class AffinityModule:
    """Holds the affinity state of one runtime (matrix, placement)."""

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime
        self.comm: CommunicationMatrix | None = None
        self.placement: Placement | None = None
        #: Ablation hooks consumed by :meth:`affinity_compute` (set before
        #: ``run()``): ``hyperthread_aware`` (bool), ``engine``
        #: ("optimal"/"greedy"), ``use_control_threads`` (bool).
        self.options: dict = {}

    def dependency_get(self) -> CommunicationMatrix:
        """Compute and store the operation communication matrix."""
        self.comm = dependency_matrix(self.runtime)
        return self.comm

    def affinity_compute(
        self,
        *,
        hyperthread_aware: bool | None = None,
        engine: str | None = None,
    ) -> Placement:
        """Run Algorithm 1; stores and returns the placement.

        Explicit arguments override :attr:`options` (the ablation hooks).
        """
        if self.comm is None:
            self.dependency_get()
        assert self.comm is not None
        if hyperthread_aware is None:
            hyperthread_aware = self.options.get("hyperthread_aware", True)
        if engine is None:
            engine = self.options.get("engine")
        locations = self.runtime.locations
        if self.options.get("use_control_threads", True):
            n_control = len(locations)
            owners = [loc.owner.op_id for loc in locations]
        else:
            n_control = 0
            owners = []
        self.placement = treematch_map(
            self.runtime.topology,
            self.comm,
            n_control=n_control,
            control_owners=owners,
            hyperthread_aware=hyperthread_aware,
            engine=engine,
        )
        return self.placement

    def affinity_set(self) -> None:
        """Bind the machine threads according to the stored placement.

        Compute thread *i* is operation *i* (runtime spawn order); control
        thread *j* guards location *j*. Threads without an entry (control
        mode ``"os"``) stay unbound.
        """
        if self.placement is None:
            raise ORWLError("affinity_set before affinity_compute")
        machine = self.runtime.machine
        compute_threads = [t for t in machine.threads if t.kind == "compute"]
        control_threads = [t for t in machine.threads if t.kind == "control"]
        if len(compute_threads) != self.comm.order:
            raise ORWLError(
                f"{len(compute_threads)} compute threads vs matrix order "
                f"{self.comm.order}; call affinity_set from run()"
            )
        for op_id, pu in self.placement.thread_to_pu.items():
            machine.bind_thread(compute_threads[op_id], Bitmap.single(pu))
        for loc_id, pu in self.placement.control_to_pu.items():
            if loc_id < len(control_threads):
                machine.bind_thread(control_threads[loc_id], Bitmap.single(pu))
