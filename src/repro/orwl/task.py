"""ORWL tasks and operations.

A :class:`Task` decomposes the application (``orwl_task``); it executes as
one or more :class:`Operation`\\ s, each backed by one simulated thread.
The single-thread-per-task model of the paper is simply a task with one
operation. Operations own locations and handles; handles must be declared
before :meth:`repro.orwl.runtime.Runtime.schedule` so the runtime can
extract the dependency structure without running any application code —
the property the affinity module relies on.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.errors import ORWLError
from repro.orwl.handle import Handle
from repro.orwl.location import Location
from repro.sim.process import Compute

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.runtime import Runtime

__all__ = ["Task", "Operation"]

BodyFn = Callable[["Operation"], Any]


class Operation:
    """One schedulable thread of a task."""

    def __init__(self, op_id: int, task: "Task", name: str, body: BodyFn | None) -> None:
        self.op_id = op_id
        self.task = task
        self.name = name
        self.body = body
        self.handles: list[Handle] = []
        #: Handles attached by DFG extensions (orwl_split / orwl_fifo, see
        #: :mod:`repro.orwl.split`) rather than declared directly. They
        #: take part in scheduling, dependency extraction and analysis
        #: exactly like declared handles, but are kept apart so extension
        #: sugar never perturbs the user's declaration order.
        self.ext_handles: list[Handle] = []
        self.locations: list[Location] = []

    # -- declaration API ------------------------------------------------------

    def location(self, name: str, size: int = 0) -> Location:
        """Declare a location owned by this operation."""
        return self.task.runtime._new_location(self, name, size)

    def write_handle(self, location: Location, *, iterative: bool = False) -> Handle:
        """``orwl_write_insert`` — exclusive access to *location*."""
        return self._insert_handle(location, "w", iterative)

    def read_handle(self, location: Location, *, iterative: bool = False) -> Handle:
        """``orwl_read_insert`` — shared access to *location*."""
        return self._insert_handle(location, "r", iterative)

    def _insert_handle(self, location: Location, mode: str, iterative: bool) -> Handle:
        self.task.runtime._check_not_scheduled("insert a handle")
        handle = Handle(self, location, mode, iterative=iterative)
        self.handles.append(handle)
        return handle

    def _insert_ext_handle(self, location: Location, mode: str, iterative: bool) -> Handle:
        """Attach an extension-owned handle (orwl_split / orwl_fifo)."""
        self.task.runtime._check_not_scheduled("insert a handle")
        handle = Handle(self, location, mode, iterative=iterative)
        self.ext_handles.append(handle)
        return handle

    @property
    def all_handles(self) -> list[Handle]:
        """Declared handles followed by extension-attached ones.

        Every consumer of the program graph (``schedule()``, dependency
        extraction, graph export, the linter and the analyzers) must use
        this view — iterating ``handles`` alone silently drops split/fifo
        wiring.
        """
        if not self.ext_handles:
            return list(self.handles)
        return [*self.handles, *self.ext_handles]

    def set_body(self, body: BodyFn) -> None:
        self.body = body

    # -- body helpers -----------------------------------------------------------

    @staticmethod
    def compute(flops: float, efficiency: float = 1.0) -> Compute:
        """Convenience: a Compute op to yield from a body."""
        return Compute(flops, efficiency)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Operation #{self.op_id} {self.name!r}>"


class Task:
    """An application task (``orwl_task``): a named group of operations."""

    def __init__(self, task_id: int, runtime: "Runtime", name: str) -> None:
        self.task_id = task_id
        self.runtime = runtime
        self.name = name
        self.operations: list[Operation] = []

    def operation(self, name: str = "", body: BodyFn | None = None) -> Operation:
        """Add an operation (one thread). Name defaults to ``task/opN``."""
        self.runtime._check_not_scheduled("add an operation")
        label = name or f"{self.name}/op{len(self.operations)}"
        op = self.runtime._new_operation(self, label, body)
        self.operations.append(op)
        return op

    @property
    def main_op(self) -> Operation:
        """The task's first operation (created on demand) — the one-thread-
        per-task model."""
        if not self.operations:
            return self.operation()
        return self.operations[0]

    # -- sugar delegating to the main operation ------------------------------------

    def location(self, name: str, size: int = 0) -> Location:
        return self.main_op.location(name, size)

    def write_handle(self, location: Location, *, iterative: bool = False) -> Handle:
        return self.main_op.write_handle(location, iterative=iterative)

    def read_handle(self, location: Location, *, iterative: bool = False) -> Handle:
        return self.main_op.read_handle(location, iterative=iterative)

    def set_body(self, body: BodyFn) -> None:
        if self.main_op.body is not None:
            raise ORWLError(f"task {self.name!r} main operation already has a body")
        self.main_op.set_body(body)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Task #{self.task_id} {self.name!r} ops={len(self.operations)}>"
