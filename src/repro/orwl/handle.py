"""ORWL handles: an operation's read/write connection to a location.

``iterative=True`` gives ``orwl_handle2`` semantics: every release
re-inserts a request for the next iteration before the lock is handed on,
so each participant keeps its slot in the access rotation.

The blocking calls are generators (the simulated-thread protocol):

    yield from handle.acquire()
    ... use handle.map() / yield handle.touch(...) ...
    handle.release()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import HandleStateError
from repro.orwl.location import Location, Request
from repro.sim.process import Touch, Wait

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.task import Operation

__all__ = ["Handle"]


class Handle:
    """Connects one operation to one location, read or write."""

    def __init__(
        self,
        op: "Operation",
        location: Location,
        mode: str,
        *,
        iterative: bool = False,
    ) -> None:
        if mode not in ("r", "w"):
            raise HandleStateError(f"handle mode must be 'r' or 'w', got {mode!r}")
        self.op = op
        self.location = location
        self.mode = mode
        self.iterative = iterative
        #: Bytes this handle moves per iteration for the communication
        #: matrix; None = the whole location payload. Split readers
        #: (orwl_split) set a fraction.
        self.traffic: float | None = None
        #: Initial-FIFO ordering class at schedule(): writers default to
        #: 0, readers to 1 (producers go first). Old-value consumers in
        #: stencil codes set a negative rank so their iteration-0 read
        #: precedes the first write (they must see the initial state).
        self.init_rank: int | None = None
        self.held = False
        self.iteration = 0
        self.current_request: Request | None = None

    # -- wiring (runtime calls these) ---------------------------------------

    def _new_request(self) -> Request:
        runtime = self.op.task.runtime
        event = runtime.machine.event(
            f"{self.location.name}:{self.op.name}:{self.mode}{self.iteration}"
        )
        req = Request(self, self.mode, event)
        self.current_request = req
        return req

    # -- the blocking protocol -------------------------------------------------

    def acquire(self):
        """Generator: block until this handle's request becomes active."""
        req = self.current_request
        if req is None:
            raise HandleStateError(
                f"{self}: no pending request — was the runtime scheduled, "
                "and is the handle iterative if re-acquired?"
            )
        if self.held:
            raise HandleStateError(f"{self}: acquire while already held")
        yield Wait(req.event)
        self.held = True

    def release(self) -> None:
        """Release the critical section (synchronous).

        For iterative handles the next-iteration request is inserted
        *before* the release is made visible — the ORWL_SECTION2 rule.
        The actual FIFO advance is performed by the location's control
        thread (woken via the runtime).
        """
        if not self.held:
            raise HandleStateError(f"{self}: release without acquire")
        req = self.current_request
        assert req is not None
        self.iteration += 1
        if self.iterative:
            nxt = self._new_request()
            self.location.fifo.insert(nxt)
        else:
            self.current_request = None
        self.location.fifo.release(req)
        self.held = False
        self.op.task.runtime._notify_location(self.location)

    # -- data access -----------------------------------------------------------

    def touch(self, nbytes: float | None = None) -> Touch:
        """A Touch op for the location's buffer (yield it while held)."""
        if not self.held:
            raise HandleStateError(f"{self}: touch while not held")
        assert self.location.buffer is not None
        return Touch(self.location.buffer, nbytes, write=(self.mode == "w"))

    def map(self) -> Any:
        """The location's real data (data-execution mode), guarded."""
        if not self.held:
            raise HandleStateError(f"{self}: map while not held")
        return self.location.data

    def store(self, value: Any) -> None:
        """Replace the location's data (write handles only, while held)."""
        if not self.held:
            raise HandleStateError(f"{self}: store while not held")
        if self.mode != "w":
            raise HandleStateError(f"{self}: store through a read handle")
        self.location.data = value

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Handle {self.mode}{'2' if self.iterative else ''} "
            f"op={self.op.name!r} loc={self.location.name!r}>"
        )
