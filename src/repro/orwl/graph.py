"""Export the task/location graph (Fig. 3 style) as DOT or edge list.

``to_dot(runtime)`` renders operations as boxes and locations as
ellipses, with write edges op→location and read edges location→op —
the shape of the paper's Fig. 3 data-flow diagram. Works on any declared
program (before or after schedule).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.runtime import Runtime

__all__ = ["to_dot", "edge_list"]


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def edge_list(runtime: "Runtime") -> list[tuple[str, str, str, float]]:
    """All graph edges as ``(src, dst, mode, traffic_bytes)`` tuples.

    Write handles give ``(op, location, "w", bytes)``; read handles give
    ``(location, op, "r", bytes)``.
    """
    edges = []
    for op in runtime.operations:
        for h in op.all_handles:
            traffic = h.traffic if h.traffic is not None else float(h.location.size)
            if h.mode == "w":
                edges.append((op.name, h.location.name, "w", traffic))
            else:
                edges.append((h.location.name, op.name, "r", traffic))
    return edges


def to_dot(runtime: "Runtime", *, name: str = "orwl") -> str:
    """Graphviz DOT rendering of the program's data-flow graph."""
    lines = [
        f"digraph {_quote(name)} {{",
        "  rankdir=LR;",
        "  node [fontsize=10];",
    ]
    for op in runtime.operations:
        lines.append(
            f"  {_quote(op.name)} [shape=box, style=filled, "
            'fillcolor="#fff2a8"];'
        )
    for loc in runtime.locations:
        label = _quote(loc.name + "\\n" + str(loc.size) + "B")
        lines.append(
            f"  {_quote(loc.name)} [shape=ellipse, style=filled, "
            f'fillcolor="#ffc285", label={label}];'
        )
    for src, dst, mode, traffic in edge_list(runtime):
        style = "solid" if mode == "w" else "dashed"
        lines.append(
            f"  {_quote(src)} -> {_quote(dst)} "
            f'[style={style}, label="{traffic:g}"];'
        )
    lines.append("}")
    return "\n".join(lines)
