"""ORWL locations and their request FIFOs.

A location abstracts a shared resource. Access is mediated by a FIFO of
requests: the head of the queue is *active*; a write request is active
alone (exclusive), while a maximal run of adjacent read requests is active
together (shared). Releasing the last active request lets the next group
advance. Iterative handles re-append their next-iteration request *before*
the release takes effect, which reserves their slot for the next round —
the property that makes ORWL iterations fair and deadlock-free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import HandleStateError, ORWLError

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.handle import Handle
    from repro.sim.memory import Buffer
    from repro.sim.process import SimEvent

__all__ = ["Request", "LocationFIFO", "Location"]


@dataclass(eq=False)
class Request:
    """One pending access to a location."""

    handle: "Handle"
    mode: str  # "r" | "w"
    event: "SimEvent"
    active: bool = False
    released: bool = False

    def __repr__(self) -> str:  # pragma: no cover
        state = "active" if self.active else ("released" if self.released else "queued")
        return f"<Request {self.mode} op={self.handle.op.name!r} {state}>"


class LocationFIFO:
    """The ordered request queue of one location."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.queue: deque[Request] = deque()
        self.active: list[Request] = []

    def insert(self, request: Request) -> None:
        """Append a request at the tail (FIFO order is access order)."""
        self.queue.append(request)

    def release(self, request: Request) -> None:
        """Mark an active request released; caller must then advance()."""
        if not request.active:
            raise HandleStateError(
                f"release of non-active request on {self.name!r}"
            )
        request.active = False
        request.released = True
        self.active.remove(request)

    def advance(self) -> list[Request]:
        """Activate the next head group; returns newly activated requests.

        No-op while some request is still active (writers are exclusive;
        a read group must fully release before a writer can go).
        """
        if self.active or not self.queue:
            return []
        head = self.queue.popleft()
        head.active = True
        activated = [head]
        if head.mode == "r":
            # Coalesce the maximal run of adjacent readers.
            while self.queue and self.queue[0].mode == "r":
                nxt = self.queue.popleft()
                nxt.active = True
                activated.append(nxt)
        self.active.extend(activated)
        for req in activated:
            req.event.signal()
        return activated

    @property
    def depth(self) -> int:
        return len(self.queue)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FIFO {self.name!r} active={len(self.active)} queued={len(self.queue)}>"
        )


@dataclass(eq=False)
class Location:
    """A shared resource: name, size, owning operation, FIFO, buffer.

    ``size`` is set at creation or later via :meth:`scale` (the
    ``orwl_scale`` idiom). The simulated buffer is allocated by the
    runtime at run start; ``data`` may carry a real numpy array in
    data-execution mode.
    """

    loc_id: int
    name: str
    owner: Any  # Operation; untyped to avoid a circular import
    size: int = 0
    fifo: LocationFIFO = field(default_factory=LocationFIFO)
    buffer: "Buffer | None" = None
    data: Any = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.fifo.name = self.name

    def scale(self, size: int) -> None:
        """Set the payload size in bytes (``orwl_scale``)."""
        if size <= 0:
            raise ORWLError(f"location size must be positive, got {size}")
        if self.buffer is not None:
            raise ORWLError(f"location {self.name!r} already materialized")
        self.size = int(size)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Location #{self.loc_id} {self.name!r} {self.size}B>"
