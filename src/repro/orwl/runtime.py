"""The ORWL runtime: schedule, spawn, run — with the affinity add-on.

Lifecycle::

    rt = Runtime(smp12e5(), affinity=True)       # or ORWL_AFFINITY=1
    t = rt.task("stage0")
    loc = t.location("out", 1 << 20)
    h = t.write_handle(loc, iterative=True)
    t.set_body(body_fn)                           # body_fn(op) -> generator
    ...
    result = rt.run()                             # schedule + execute

``schedule()`` (implicit in ``run``) freezes the task/location graph,
orders every initial request into its location FIFO (owner first, then
readers by operation id — the deterministic order that makes the iterative
system deadlock-free for DAG-per-iteration applications), and performs the
initial FIFO activations. ``run()`` then spawns one simulated thread per
operation plus one control thread per location, applies the affinity
module when enabled, and executes on the simulated machine.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ORWLError, ScheduleError
from repro.orwl.affinity import AffinityModule
from repro.orwl.location import Location
from repro.orwl.task import Operation, Task
from repro.sim.counters import Counters
from repro.sim.machine import SimMachine
from repro.sim.params import CostModel
from repro.sim.process import Compute, Wait
from repro.topology.tree import Topology
from repro.treematch.commmatrix import CommunicationMatrix
from repro.treematch.mapping import Placement

__all__ = ["Runtime", "RunResult", "initial_request_order"]

AFFINITY_ENV = "ORWL_AFFINITY"


def initial_request_order(runtime: "Runtime") -> dict[int, list]:
    """Per-location handle order of the initial FIFOs, ``loc_id → [Handle]``.

    This is the coordination step Listing 1 performs in
    ``orwl_schedule()``: requests sort by init rank (writers 0, readers 1
    unless overridden — see ``Handle.init_rank``), then operation id, then
    declaration order. Extension-attached handles (orwl_split/orwl_fifo)
    participate exactly like declared ones. ``schedule()`` consumes this
    order to seed the FIFOs; the static analyzers consume it to reason
    about grant order without running anything — sharing the helper keeps
    the two views identical by construction.
    """
    per_location: dict[int, list] = {loc.loc_id: [] for loc in runtime.locations}
    for op in runtime.operations:
        for seq, handle in enumerate(op.all_handles):
            rank = (
                handle.init_rank
                if handle.init_rank is not None
                else (0 if handle.mode == "w" else 1)
            )
            key = (rank, op.op_id, seq)
            per_location[handle.location.loc_id].append((key, handle))
    return {
        lid: [handle for _, handle in sorted(entries, key=lambda kv: kv[0])]
        for lid, entries in per_location.items()
    }


@dataclass
class RunResult:
    """Everything a benchmark needs from one ORWL execution."""

    seconds: float
    counters: Counters
    compute_counters: Counters
    control_counters: Counters
    placement: Placement | None
    comm: CommunicationMatrix | None
    machine: SimMachine

    @property
    def gflops(self) -> float:
        """Application GFLOP/s (compute threads only)."""
        if self.seconds <= 0:
            return 0.0
        return self.compute_counters.flops / self.seconds / 1e9

    def report(self) -> str:
        """Human-readable run summary (time, rate, counters, placement)."""
        c = self.counters
        lines = [
            f"elapsed        {self.seconds:.6f} s "
            f"({self.machine.elapsed_cycles:,.0f} cycles)",
            f"compute rate   {self.gflops:.2f} GFLOP/s",
            f"utilization    {self.machine.utilization():.1%}",
            f"L3 misses      {c.l3_misses:,.0f}",
            f"stalled cycles {c.stalled_cycles:,.0f}",
            f"ctx switches   {c.context_switches:,}",
            f"migrations     {c.cpu_migrations:,}",
        ]
        if self.placement is not None:
            lines.append(
                f"placement      {self.placement.granularity}-granular, "
                f"control={self.placement.control_mode}, "
                f"oversub x{self.placement.oversub_factor}"
            )
        else:
            lines.append("placement      none (OS scheduling)")
        return "\n".join(lines)


class Runtime:
    """One ORWL program instance bound to a (simulated) machine."""

    def __init__(
        self,
        topology: Topology,
        *,
        affinity: bool | None = None,
        model: CostModel | None = None,
        os_policy: str | None = None,
        seed: int = 0,
        trace: bool = False,
        core: str = "auto",
        observer=None,
    ) -> None:
        if affinity is None:
            affinity = os.environ.get(AFFINITY_ENV, "0") == "1"
        self.affinity_enabled = bool(affinity)
        self.topology = topology
        self.machine = SimMachine(
            topology, model, os_policy=os_policy, seed=seed, trace=trace,
            core=core, observer=observer,
        )
        self.tasks: list[Task] = []
        self.operations: list[Operation] = []
        self.locations: list[Location] = []
        self.affinity = AffinityModule(self)
        self._scheduled = False
        self._running = False
        self._shutdown = False
        self._ops_remaining = 0
        self._result: RunResult | None = None

    # -- program construction ---------------------------------------------------

    def task(self, name: str = "") -> Task:
        self._check_not_scheduled("create a task")
        t = Task(len(self.tasks), self, name or f"task{len(self.tasks)}")
        self.tasks.append(t)
        return t

    def _new_operation(self, task: Task, name: str, body) -> Operation:
        op = Operation(len(self.operations), task, name, body)
        self.operations.append(op)
        return op

    def _new_location(self, owner: Operation, name: str, size: int) -> Location:
        self._check_not_scheduled("create a location")
        loc = Location(len(self.locations), name, owner, 0)
        if size:
            loc.scale(size)
        loc.meta["work"] = self.machine.event(f"work:{name}")
        self.locations.append(loc)
        owner.locations.append(loc)
        return loc

    def _check_not_scheduled(self, what: str) -> None:
        if self._scheduled:
            raise ScheduleError(f"cannot {what} after schedule()")

    def validate(self) -> list:
        """Static wiring checks; see :mod:`repro.orwl.lint`."""
        from repro.orwl.lint import validate_program

        return validate_program(self)

    # -- schedule -------------------------------------------------------------------

    def schedule(self) -> None:
        """Freeze the graph, order initial requests, activate FIFO heads."""
        if self._scheduled:
            raise ScheduleError("schedule() may only be called once")
        if not self.operations:
            raise ScheduleError("no tasks/operations declared")
        for op in self.operations:
            if op.body is None:
                raise ScheduleError(f"operation {op.name!r} has no body")
        for loc in self.locations:
            if loc.size <= 0:
                raise ScheduleError(
                    f"location {loc.name!r} was never scaled to a size"
                )

        # Deterministic initial request order per location — see
        # :func:`initial_request_order` (shared with the static analyzers).
        per_location = initial_request_order(self)
        for loc in self.locations:
            for handle in per_location[loc.loc_id]:
                loc.fifo.insert(handle._new_request())
            loc.fifo.advance()

        # Materialize buffers (home set lazily by first touch).
        for loc in self.locations:
            loc.buffer = self.machine.allocate(loc.size, loc.name)

        self._scheduled = True

    # -- control threads ---------------------------------------------------------------

    def _notify_location(self, loc: Location) -> None:
        """Called by Handle.release: wake the location's control thread."""
        loc.meta["work"].signal()

    def _control_body(self, loc: Location):
        work = loc.meta["work"]
        control_cycles = self.machine.model.control_cycles
        while True:
            yield Wait(work)
            if self._shutdown:
                return
            yield Compute(control_cycles)
            loc.fifo.advance()

    def _op_body(self, op: Operation):
        gen = op.body(op)
        if gen is not None:
            yield from gen
        self._ops_remaining -= 1
        if self._ops_remaining == 0:
            self._shutdown = True
            for loc in self.locations:
                loc.meta["work"].signal()

    # -- the affinity add-on API (paper Sec. IV-B) ------------------------------------------

    def dependency_get(self) -> CommunicationMatrix:
        """``orwl_dependency_get``: (re)compute the communication matrix."""
        return self.affinity.dependency_get()

    def affinity_compute(self) -> Placement:
        """``orwl_affinity_compute``: run Algorithm 1 on the current state."""
        return self.affinity.affinity_compute()

    def affinity_set(self) -> None:
        """``orwl_affinity_set``: bind every thread per the computed mapping."""
        self.affinity.affinity_set()

    # -- run ----------------------------------------------------------------------------------

    def prepare_run(self) -> None:
        """Everything :meth:`run` does before starting the simulator:
        schedule, spawn compute/control threads, and apply the initial
        affinity pipeline. Split out so windowed drivers (the adaptive
        controller of :mod:`repro.affinity`) can own the run loop and
        finish via :meth:`_build_result`.
        """
        if self._running:
            raise ORWLError("run() may only be called once")
        self._running = True
        if not self._scheduled:
            self.schedule()

        for op in self.operations:
            self.machine.add_thread(op.name, self._op_body(op), kind="compute")
        for loc in self.locations:
            self.machine.add_thread(
                f"ctl:{loc.name}", self._control_body(loc), kind="control"
            )
        self._ops_remaining = len(self.operations)

        if self.affinity_enabled:
            self.affinity.dependency_get()
            self.affinity.affinity_compute()
            self.affinity.affinity_set()

    def _build_result(self, seconds: float) -> RunResult:
        """Package the post-run state; the tail half of :meth:`run`."""
        self._result = RunResult(
            seconds=seconds,
            counters=self.machine.total_counters(),
            compute_counters=self.machine.counters_by_kind("compute"),
            control_counters=self.machine.counters_by_kind("control"),
            placement=self.affinity.placement,
            comm=self.affinity.comm,
            machine=self.machine,
        )
        return self._result

    def run(
        self,
        *,
        max_cycles: float | None = None,
        max_events: int | None = None,
    ) -> RunResult:
        """Execute the program; returns a :class:`RunResult`."""
        self.prepare_run()

        run_kwargs = {}
        if max_cycles is not None:
            run_kwargs["max_cycles"] = max_cycles
        if max_events is not None:
            run_kwargs["max_events"] = max_events
        seconds = self.machine.run(**run_kwargs)
        return self._build_result(seconds)
