"""Static checks on an ORWL program graph (``validate``).

Run before ``schedule()`` to catch the classic wiring mistakes that
otherwise only show up as deadlocks or silent no-communication:

* a location nobody reads (dead write traffic),
* a location with readers but no writer (reads only ever see zeros),
* an owner without any handle on its own location,
* an operation with no handles at all in a program that has locations,
* non-iterative handles in programs that look iterative (mixed usage).

Issues are advisory (the model permits all of these); ``level`` is
``"warning"`` or ``"note"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.runtime import Runtime

__all__ = ["Issue", "validate_program"]


@dataclass(frozen=True)
class Issue:
    level: str  # "warning" | "note"
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover
        return f"[{self.level}] {self.code}: {self.message}"


def validate_program(runtime: "Runtime") -> list[Issue]:
    """Inspect the declared graph; returns a list of issues (possibly empty)."""
    issues: list[Issue] = []
    readers: dict[int, int] = {loc.loc_id: 0 for loc in runtime.locations}
    writers: dict[int, int] = {loc.loc_id: 0 for loc in runtime.locations}
    owner_handles: dict[int, int] = {loc.loc_id: 0 for loc in runtime.locations}
    iterative_seen = non_iterative_seen = False

    for op in runtime.operations:
        for h in op.handles:
            lid = h.location.loc_id
            if h.mode == "r":
                readers[lid] += 1
            else:
                writers[lid] += 1
            if h.op is h.location.owner:
                owner_handles[lid] += 1
            if h.iterative:
                iterative_seen = True
            else:
                non_iterative_seen = True

    for loc in runtime.locations:
        lid = loc.loc_id
        if writers[lid] and not readers[lid]:
            issues.append(Issue(
                "note", "unread-location",
                f"location {loc.name!r} is written but never read",
            ))
        if readers[lid] and not writers[lid]:
            issues.append(Issue(
                "warning", "writerless-location",
                f"location {loc.name!r} has {readers[lid]} reader(s) but "
                "no writer — reads will only ever observe initial data",
            ))
        if not readers[lid] and not writers[lid]:
            issues.append(Issue(
                "warning", "orphan-location",
                f"location {loc.name!r} has no handles at all",
            ))
        elif owner_handles[lid] == 0:
            issues.append(Issue(
                "note", "absent-owner",
                f"owner {loc.owner.name!r} holds no handle on its own "
                f"location {loc.name!r}",
            ))

    if runtime.locations:
        for op in runtime.operations:
            if not op.handles:
                issues.append(Issue(
                    "note", "handleless-operation",
                    f"operation {op.name!r} uses no locations "
                    "(pure compute)",
                ))

    if iterative_seen and non_iterative_seen:
        issues.append(Issue(
            "note", "mixed-iteration",
            "program mixes iterative and one-shot handles; one-shot "
            "handles stop participating after their first release",
        ))
    return issues
