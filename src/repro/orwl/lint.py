"""Static wiring checks on an ORWL program graph (``validate``).

Run before ``schedule()`` to catch the classic wiring mistakes that
otherwise only show up as deadlocks or silent no-communication:

* a location nobody reads (dead write traffic),
* a location with readers but no writer (reads only ever see zeros),
* an owner without any handle on its own location,
* an operation with no handles at all in a program that has locations,
* non-iterative handles in programs that look iterative (mixed usage).

Handles attached through the DFG extensions (``orwl_split`` /
``orwl_fifo``, see :mod:`repro.orwl.split`) count exactly like declared
ones — a location whose only readers are split readers is *not* an
orphan.

Issues are advisory (the model permits all of these); findings are
``"warning"`` or ``"note"`` level and use the shared findings model of
:mod:`repro.analyze.report` — deeper analyses (deadlock, races,
placement) live in :mod:`repro.analyze`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analyze.report import Finding, sort_findings

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.runtime import Runtime

__all__ = ["Issue", "validate_program"]

#: Backwards-compatible alias — the old ``Issue(level, code, message)``
#: shape is the first three fields of :class:`Finding`.
Issue = Finding


def validate_program(runtime: "Runtime") -> list[Finding]:
    """Inspect the declared graph; returns findings in canonical order."""
    findings: list[Finding] = []
    readers: dict[int, int] = {loc.loc_id: 0 for loc in runtime.locations}
    writers: dict[int, int] = {loc.loc_id: 0 for loc in runtime.locations}
    owner_handles: dict[int, int] = {loc.loc_id: 0 for loc in runtime.locations}
    iterative_seen = non_iterative_seen = False

    for op in runtime.operations:
        for h in op.all_handles:
            lid = h.location.loc_id
            if h.mode == "r":
                readers[lid] += 1
            else:
                writers[lid] += 1
            if h.op is h.location.owner:
                owner_handles[lid] += 1
            if h.iterative:
                iterative_seen = True
            else:
                non_iterative_seen = True

    for loc in runtime.locations:
        lid = loc.loc_id
        if writers[lid] and not readers[lid]:
            findings.append(Finding(
                "note", "unread-location",
                f"location {loc.name!r} is written but never read",
                subject=loc.name,
                fix_hint="drop the location or add a reader",
            ))
        if readers[lid] and not writers[lid]:
            findings.append(Finding(
                "warning", "writerless-location",
                f"location {loc.name!r} has {readers[lid]} reader(s) but "
                "no writer — reads will only ever observe initial data",
                subject=loc.name,
                fix_hint="give some operation a write handle on it",
            ))
        if not readers[lid] and not writers[lid]:
            findings.append(Finding(
                "warning", "orphan-location",
                f"location {loc.name!r} has no handles at all",
                subject=loc.name,
                fix_hint="attach handles (declared or via orwl_split/"
                         "orwl_fifo) or remove the location",
            ))
        elif owner_handles[lid] == 0:
            findings.append(Finding(
                "note", "absent-owner",
                f"owner {loc.owner.name!r} holds no handle on its own "
                f"location {loc.name!r}",
                subject=loc.name,
            ))

    if runtime.locations:
        for op in runtime.operations:
            if not op.all_handles:
                findings.append(Finding(
                    "note", "handleless-operation",
                    f"operation {op.name!r} uses no locations "
                    "(pure compute)",
                    subject=op.name,
                ))

    if iterative_seen and non_iterative_seen:
        findings.append(Finding(
            "note", "mixed-iteration",
            "program mixes iterative and one-shot handles; one-shot "
            "handles stop participating after their first release",
        ))
    return sort_findings(findings)
