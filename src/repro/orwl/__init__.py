"""ORWL — the Ordered Read-Write Locks runtime model.

A Python rendition of the C library's programming model (Clauss & Gustedt,
JPDC 2010) running on the simulated machine:

* **locations** (:class:`Location`) are shared resources guarded by a FIFO
  of read/write requests; adjacent read requests are served concurrently;
* **tasks** decompose the application; each task runs one or more
  **operations**, each an OS (simulated) thread;
* **handles** (:class:`Handle`) connect operations to locations with read
  or write access; *iterative* handles re-insert their request on release
  (the ``orwl_handle2`` / ``ORWL_SECTION2`` idiom), which yields
  deadlock-free, fair, decentralized iteration;
* **control threads** (one per location) perform lock handoff and data
  transfer — the source of ORWL's context-switch signature in Tables
  II–IV;
* the **affinity add-on** (:mod:`repro.orwl.affinity`) is the paper's
  contribution: fully automatic topology-aware placement of all these
  threads, enabled by ``ORWL_AFFINITY=1`` or ``Runtime(affinity=True)``.
"""

from repro.orwl.affinity import AffinityModule
from repro.orwl.dependency import dependency_matrix
from repro.orwl.handle import Handle
from repro.orwl.location import Location
from repro.orwl.runtime import RunResult, Runtime, initial_request_order
from repro.orwl.section import section
from repro.orwl.split import fifo_channel, split_readers
from repro.orwl.task import Operation, Task

__all__ = [
    "Runtime",
    "RunResult",
    "Task",
    "Operation",
    "Location",
    "Handle",
    "section",
    "dependency_matrix",
    "initial_request_order",
    "split_readers",
    "fifo_channel",
    "AffinityModule",
]
