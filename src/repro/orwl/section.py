"""ORWL_SECTION sugar for generator-style task bodies.

Usage inside an operation body::

    def body(op):
        ...
        yield from section(handle, work())          # one handle
        yield from section([h_in, h_out], work())   # nested sections

where ``work()`` is a generator run while the handle(s) are held. Handles
are acquired in the given order and released in reverse, mirroring nested
``ORWL_SECTION`` blocks in the C API.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.orwl.handle import Handle

__all__ = ["section"]


def section(handles: Handle | Iterable[Handle], body: Iterator | None = None):
    """Generator wrapping *body* in acquire/release of *handles*."""
    hs = [handles] if isinstance(handles, Handle) else list(handles)
    for h in hs:
        yield from h.acquire()
    try:
        if body is not None:
            yield from body
    finally:
        for h in reversed(hs):
            h.release()
