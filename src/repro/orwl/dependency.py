"""Dependency extraction — ``orwl_dependency_get``.

At schedule time the runtime knows every task/operation, every location
(with its payload size) and every handle. That is all the affinity module
needs: the communication matrix entry ``[a, b]`` accumulates the bytes
operation *a* moves per iteration through locations owned by operation
*b*. No application code runs and nothing needs to be annotated — the
paper's central "abstracted" property.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.treematch.commmatrix import CommunicationMatrix

if TYPE_CHECKING:  # pragma: no cover
    from repro.orwl.runtime import Runtime

__all__ = ["dependency_matrix"]


def dependency_matrix(runtime: "Runtime") -> CommunicationMatrix:
    """Build the operation-to-operation communication matrix."""
    ops = runtime.operations
    n = len(ops)
    m = np.zeros((n, n))
    for op in ops:
        for handle in op.all_handles:
            owner = handle.location.owner
            if owner is op:
                continue
            traffic = (
                handle.traffic
                if handle.traffic is not None
                else float(handle.location.size)
            )
            m[op.op_id, owner.op_id] += traffic
    return CommunicationMatrix(m, labels=[op.name for op in ops])
