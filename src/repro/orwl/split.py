"""DFG extensions: ``orwl_split`` (and the Fig. 3 fan-out idiom).

``split_readers`` distributes read access to one location over *k*
operations, each consuming ``1/k`` of the payload — the primitive used to
parallelize the GMM and CCL stages of the video pipeline. Each reader's
handle carries a proportional ``traffic`` so the communication matrix sees
the split (cf. the block structure of Fig. 1).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ORWLError
from repro.orwl.handle import Handle
from repro.orwl.location import Location
from repro.orwl.task import Operation

__all__ = ["split_readers", "split_fraction"]


def split_fraction(location: Location, k: int) -> float:
    """Bytes each of *k* split readers moves per iteration."""
    if k <= 0:
        raise ORWLError(f"split factor must be positive, got {k}")
    return location.size / k


def split_readers(
    location: Location,
    ops: Sequence[Operation],
    *,
    iterative: bool = True,
) -> list[Handle]:
    """Give every op in *ops* a read handle on a 1/k slice of *location*."""
    if not ops:
        raise ORWLError("split_readers needs at least one operation")
    share = split_fraction(location, len(ops))
    handles: list[Handle] = []
    for op in ops:
        h = op.read_handle(location, iterative=iterative)
        h.traffic = share
        handles.append(h)
    return handles
