"""DFG extensions: ``orwl_split`` and ``orwl_fifo`` (the Fig. 3 idioms).

``split_readers`` distributes read access to one location over *k*
operations, each consuming ``1/k`` of the payload — the primitive used to
parallelize the GMM and CCL stages of the video pipeline. Each reader's
handle carries a proportional ``traffic`` so the communication matrix sees
the split (cf. the block structure of Fig. 1).

``fifo_channel`` is the buffered producer→consumer channel of the ORWL DFG
extensions: a ring of *depth* slot locations through which the writer can
run up to ``depth - 1`` iterations ahead of the reader instead of
handshaking on a single location.

Handles created by either extension are attached to the operations via
``Operation.ext_handles`` (not the user-declared ``handles`` list); every
graph consumer — ``schedule()``, dependency extraction, the linter, the
analyzers — must therefore iterate ``Operation.all_handles``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import HandleStateError, ORWLError
from repro.orwl.handle import Handle
from repro.orwl.location import Location
from repro.orwl.task import Operation

__all__ = [
    "split_readers",
    "split_fraction",
    "fifo_channel",
    "FifoChannel",
    "FifoEndpoint",
]


def split_fraction(location: Location, k: int) -> float:
    """Bytes each of *k* split readers moves per iteration."""
    if k <= 0:
        raise ORWLError(f"split factor must be positive, got {k}")
    return location.size / k


def split_readers(
    location: Location,
    ops: Sequence[Operation],
    *,
    iterative: bool = True,
) -> list[Handle]:
    """Give every op in *ops* a read handle on a 1/k slice of *location*."""
    if not ops:
        raise ORWLError("split_readers needs at least one operation")
    share = split_fraction(location, len(ops))
    handles: list[Handle] = []
    for op in ops:
        h = op._insert_ext_handle(location, "r", iterative)
        h.traffic = share
        handles.append(h)
    return handles


class FifoEndpoint:
    """One side (writer or reader) of a :class:`FifoChannel`.

    Mirrors the single-handle blocking protocol — ``yield from
    acquire()``, ``touch()``/``map()``/``store()``, ``release()`` — but
    each acquire/release pair advances to the next slot of the ring, so a
    writer endpoint may hold slot ``k+1`` while the reader still drains
    slot ``k``.
    """

    def __init__(self, channel: "FifoChannel", op: Operation, mode: str,
                 iterative: bool) -> None:
        self.channel = channel
        self.op = op
        self.mode = mode
        self.handles: list[Handle] = [
            op._insert_ext_handle(slot, mode, iterative)
            for slot in channel.slots
        ]
        self._next = 0

    @property
    def current(self) -> Handle:
        """The slot handle the endpoint currently targets."""
        return self.handles[self._next % len(self.handles)]

    def acquire(self):
        """Generator: block until the current slot is granted."""
        yield from self.current.acquire()

    def release(self) -> None:
        """Release the current slot and advance to the next one."""
        h = self.current
        if not h.held:
            raise HandleStateError(
                f"fifo endpoint {self.op.name!r}/{self.channel.name!r}: "
                "release without acquire"
            )
        h.release()
        self._next += 1

    def touch(self, nbytes: float | None = None):
        return self.current.touch(nbytes)

    def map(self):
        return self.current.map()

    def store(self, value) -> None:
        self.current.store(value)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FifoEndpoint {self.mode} op={self.op.name!r} "
            f"chan={self.channel.name!r} slot={self._next % len(self.handles)}>"
        )


class FifoChannel:
    """A ring of *depth* slot locations forming a buffered channel."""

    def __init__(self, owner: Operation, name: str, slot_bytes: int,
                 depth: int) -> None:
        if depth < 1:
            raise ORWLError(f"fifo depth must be >= 1, got {depth}")
        if slot_bytes <= 0:
            raise ORWLError(f"fifo slot size must be positive, got {slot_bytes}")
        self.name = name
        self.owner = owner
        self.slots: list[Location] = [
            owner.location(f"{name}@{k}", slot_bytes) for k in range(depth)
        ]
        for slot in self.slots:
            slot.meta["fifo_channel"] = name

    @property
    def depth(self) -> int:
        return len(self.slots)

    def writer(self, op: Operation, *, iterative: bool = True) -> FifoEndpoint:
        """Attach a writing endpoint for *op* (one handle per slot)."""
        return FifoEndpoint(self, op, "w", iterative)

    def reader(self, op: Operation, *, iterative: bool = True) -> FifoEndpoint:
        """Attach a reading endpoint for *op* (one handle per slot)."""
        return FifoEndpoint(self, op, "r", iterative)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<FifoChannel {self.name!r} depth={self.depth}>"


def fifo_channel(owner: Operation, name: str, slot_bytes: int,
                 depth: int = 2) -> FifoChannel:
    """``orwl_fifo``: create a buffered channel owned by *owner*."""
    return FifoChannel(owner, name, slot_bytes, depth)
