"""A locality-aware work-stealing runtime (related-work baseline).

Section II of the paper argues that dynamic task schedulers (StarPU's
``lws``, OpenStream-style runtimes) "are not adapted for applications
with a limited number of tasks and a coarse granularity ... dynamic
scheduling could be not efficient because of granularity and generates
unnecessary overhead", and that static pipelines like the video tracker
*require* static placement.

:mod:`repro.worksteal` implements that comparison point: a worker-per-PU
runtime with per-worker deques, ready-dependency tracking and (optionally
locality-aware) stealing, running on the same simulated machine. The
bench ``benchmarks/test_related_work_stealing.py`` reproduces the
argument: on the coarse-grained LK23 task graph, ORWL+affinity beats the
work stealer even with locality-aware victim selection.
"""

from repro.worksteal.runtime import StealResult, TaskGraph, WorkStealingRuntime

__all__ = ["WorkStealingRuntime", "TaskGraph", "StealResult"]
