"""Work-stealing execution of a dependency task graph on the simulator.

The programming model is the classic dynamic-runtime one (StarPU/Cilk
style): the application is a DAG of *task instances*, each with
dependencies, a compute cost and data touches. Workers (one per core,
bound) pop from their own deque and steal when empty:

* ``locality="random"`` — steal from a uniformly random victim;
* ``locality="near"`` — prefer victims sharing the thief's NUMA node,
  then nearest nodes (an ``lws``-style heuristic).

Ready tasks are pushed to the worker that produced their last
dependency (data-follows-producer), so with coarse tasks the stealer
behaves as well as a dynamic runtime reasonably can — and the benches
show the static ORWL placement still wins, which is the paper's §II
claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.sim.machine import SimMachine
from repro.sim.memory import Buffer
from repro.sim.params import CostModel
from repro.sim.process import Compute, Touch, Wait, YieldCPU
from repro.topology.tree import Topology
from repro.util.bitmap import Bitmap
from repro.util.rng import make_rng

__all__ = ["TaskGraph", "WorkStealingRuntime", "StealResult"]

#: Per-pop scheduling overhead of a dynamic runtime, in cycles.
POP_OVERHEAD = 2_000.0
#: Extra overhead of a successful steal (cross-worker synchronization).
STEAL_OVERHEAD = 8_000.0


@dataclass
class _TaskNode:
    task_id: int
    flops: float
    touches: list[tuple[Buffer, float, bool]]
    deps: list[int]
    children: list[int] = field(default_factory=list)
    remaining_deps: int = 0
    done: bool = False


class TaskGraph:
    """A DAG of task instances for the work stealer."""

    def __init__(self) -> None:
        self.nodes: list[_TaskNode] = []

    def add_task(
        self,
        flops: float,
        *,
        touches: list[tuple[Buffer, float, bool]] | None = None,
        deps: list[int] | None = None,
    ) -> int:
        """Add a task; returns its id. *deps* are ids of earlier tasks."""
        deps = list(deps or [])
        for d in deps:
            if not 0 <= d < len(self.nodes):
                raise ReproError(f"unknown dependency {d}")
        node = _TaskNode(
            task_id=len(self.nodes),
            flops=float(flops),
            touches=list(touches or []),
            deps=deps,
            remaining_deps=len(deps),
        )
        for d in deps:
            self.nodes[d].children.append(node.task_id)
        self.nodes.append(node)
        return node.task_id

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass
class StealResult:
    """Outcome of one work-stealing execution."""

    seconds: float
    tasks_run: int
    steals: int
    pops: int
    machine: SimMachine

    @property
    def steal_ratio(self) -> float:
        return self.steals / self.pops if self.pops else 0.0


class WorkStealingRuntime:
    """Executes a :class:`TaskGraph` with one bound worker per core."""

    def __init__(
        self,
        topology: Topology,
        *,
        n_workers: int | None = None,
        locality: str = "near",
        model: CostModel | None = None,
        seed: int = 0,
    ) -> None:
        if locality not in ("near", "random"):
            raise ReproError(f"unknown locality policy {locality!r}")
        self.topology = topology
        self.locality = locality
        self.machine = SimMachine(topology, model, seed=seed)
        cores = topology.cores
        if n_workers is None:
            n_workers = len(cores)
        if not 1 <= n_workers <= len(cores):
            raise ReproError(
                f"n_workers must be in [1, {len(cores)}], got {n_workers}"
            )
        self.n_workers = n_workers
        self._worker_pu = [cores[i].children[0].os_index for i in range(n_workers)]
        self._rng = make_rng(seed)
        self._deques: list[list[int]] = [[] for _ in range(n_workers)]
        self._victim_order = self._build_victim_orders()
        self._graph: TaskGraph | None = None
        self._tasks_left = 0
        self._steals = 0
        self._pops = 0
        self._work_event = None

    def _build_victim_orders(self) -> list[list[int]]:
        """Per-worker victim preference (near: same node first)."""
        orders = []
        for w in range(self.n_workers):
            others = [v for v in range(self.n_workers) if v != w]
            if self.locality == "near":
                me = self.machine.memory.numa_of_pu(self._worker_pu[w])
                others.sort(
                    key=lambda v: (
                        self.machine.memory.distance[
                            me, self.machine.memory.numa_of_pu(self._worker_pu[v])
                        ],
                        v,
                    )
                )
            orders.append(others)
        return orders

    # -- execution ---------------------------------------------------------------

    def run(self, graph: TaskGraph) -> StealResult:
        """Execute *graph* to completion."""
        if self._graph is not None:
            raise ReproError("run() may only be called once")
        if not len(graph):
            raise ReproError("empty task graph")
        self._graph = graph
        self._tasks_left = len(graph)
        self._work_event = self.machine.event("ws:work")

        # Seed: initially-ready tasks round-robined over the deques.
        ready = [n.task_id for n in graph.nodes if n.remaining_deps == 0]
        if not ready:
            raise ReproError("task graph has no source tasks (cycle?)")
        for k, tid in enumerate(ready):
            self._deques[k % self.n_workers].append(tid)

        for w in range(self.n_workers):
            self.machine.add_thread(
                f"ws:w{w}",
                self._worker(w),
                cpuset=Bitmap.single(self._worker_pu[w]),
            )
        seconds = self.machine.run()
        return StealResult(
            seconds=seconds,
            tasks_run=len(graph) - self._tasks_left,
            steals=self._steals,
            pops=self._pops,
            machine=self.machine,
        )

    def _try_get_work(self, w: int) -> tuple[int, bool] | None:
        if self._deques[w]:
            self._pops += 1
            return self._deques[w].pop(), False
        for victim in self._victim_order[w]:
            if self._deques[victim]:
                self._pops += 1
                self._steals += 1
                # steal from the opposite end (FIFO side)
                return self._deques[victim].pop(0), True
        return None

    def _worker(self, w: int):
        graph = self._graph
        assert graph is not None
        while self._tasks_left > 0:
            got = self._try_get_work(w)
            if got is None:
                # Idle: wait for new work (or completion broadcast).
                yield Wait(self._work_event)
                continue
            tid, stolen = got
            yield Compute(POP_OVERHEAD + (STEAL_OVERHEAD if stolen else 0.0))
            node = graph.nodes[tid]
            for buf, nbytes, write in node.touches:
                yield Touch(buf, nbytes, write=write)
            if node.flops > 0:
                yield Compute(node.flops)
            node.done = True
            self._tasks_left -= 1
            for child in node.children:
                cnode = graph.nodes[child]
                cnode.remaining_deps -= 1
                if cnode.remaining_deps == 0:
                    # Data-follows-producer: child enqueued here.
                    self._deques[w].append(child)
                    self._work_event.signal()
            if self._tasks_left == 0:
                # Wake everyone so idle workers can exit.
                self._work_event.signal(self.n_workers)
            yield YieldCPU()
