"""Machine presets.

``smp12e5``/``smp20e7`` reconstruct Table I of the paper; ``fig2_machine``
is the 4-socket, 2-blade, 32-core machine of Fig. 2 ("similar to the one
used in Table I") on which the video-tracking allocation is drawn.

Presets are **memoized**: a figure sweep instantiates the same machine
for every (variant × core-count) cell, and building the SMP20E7 tree
(160 PUs plus cache levels) costs far more than the lookup. A finalized
:class:`~repro.topology.tree.Topology` is read-only by convention — the
simulator keeps all mutable state (occupancy, residency, homing) in its
own structures — so sharing one instance is safe. Callers that really
need a private tree (e.g. to deliberately corrupt it in tests) can pass
``fresh=True`` to :func:`machine_by_name` or rebuild via
``build_topology(topo.spec)``.
"""

from __future__ import annotations

import functools
from collections.abc import Callable

from repro.errors import TopologyError
from repro.topology.builder import TopologySpec, build_topology
from repro.topology.tree import Topology

__all__ = [
    "smp12e5",
    "smp20e7",
    "smp12e5_4s",
    "smp20e7_4s",
    "fig2_machine",
    "machine_by_name",
    "list_machines",
]


def _memoized_preset(builder: Callable[[], Topology]) -> Callable[[], Topology]:
    """Build once per process, then hand out the shared finalized tree."""
    return functools.lru_cache(maxsize=1)(builder)


@_memoized_preset
def smp12e5() -> Topology:
    """SMP12E5 (Table I): 12 NUMA nodes × 1 socket × 8 cores, hyperthreaded.

    Xeon E5-4620 at 2.6 GHz, 32K L1 / 256K L2 / 20480K L3, NUMAlink6 at
    6.5 GB/s, Linux 3.10 whose scheduler *consolidates* threads onto few
    NUMA nodes (observed in Sec. VI-B.1 of the paper).
    """
    return build_topology(
        TopologySpec(
            name="SMP12E5",
            groups=1,
            numa_per_group=12,
            sockets_per_numa=1,
            cores_per_socket=8,
            pus_per_core=2,
            l3="20480K",
            l2="256K",
            l1="32K",
            clock_hz=2.6e9,
            interconnect_gbps=6.5,
            os_policy="consolidate",
            attrs={
                "socket_model": "E5-4620",
                "kernel": "3.10.0",
                "os": "Red Hat 4.8.3-9",
                "interconnect": "NUMAlink6",
            },
        )
    )


@_memoized_preset
def smp20e7() -> Topology:
    """SMP20E7 (Table I): 20 NUMA nodes × 1 socket × 8 cores, no HT.

    Xeon E7-8837 at 2.66 GHz, 32K L1 / 32K L2 / 24576K L3, NUMAlink5 at
    15 GB/s, Linux 2.6.32 whose scheduler *spreads* threads evenly over the
    20 NUMA nodes (Sec. VI-B.1).
    """
    return build_topology(
        TopologySpec(
            name="SMP20E7",
            groups=1,
            numa_per_group=20,
            sockets_per_numa=1,
            cores_per_socket=8,
            pus_per_core=1,
            l3="24576K",
            l2="32K",
            l1="32K",
            clock_hz=2.66e9,
            interconnect_gbps=15.0,
            os_policy="spread",
            attrs={
                "socket_model": "E7-8837",
                "kernel": "2.6.32.46",
                "os": "SUSE Server 11",
                "interconnect": "NUMAlink5",
            },
        )
    )


@_memoized_preset
def smp12e5_4s() -> Topology:
    """A 4-socket (30-core-class) slice of SMP12E5 — the hardware budget
    the video-tracking experiment of Fig. 6 restricts itself to."""
    return build_topology(
        TopologySpec(
            name="SMP12E5-4S",
            numa_per_group=4,
            cores_per_socket=8,
            pus_per_core=2,
            l3="20480K",
            l2="256K",
            l1="32K",
            clock_hz=2.6e9,
            interconnect_gbps=6.5,
            os_policy="consolidate",
        )
    )


@_memoized_preset
def smp20e7_4s() -> Topology:
    """A 4-socket slice of SMP20E7 (no hyperthreading), for Fig. 6."""
    return build_topology(
        TopologySpec(
            name="SMP20E7-4S",
            numa_per_group=4,
            cores_per_socket=8,
            pus_per_core=1,
            l3="24576K",
            l2="32K",
            l1="32K",
            clock_hz=2.66e9,
            interconnect_gbps=15.0,
            os_policy="spread",
        )
    )


@_memoized_preset
def fig2_machine() -> Topology:
    """The 2-blade / 4-socket / 32-core machine of Fig. 2 (no HT shown)."""
    return build_topology(
        TopologySpec(
            name="FIG2-4S32C",
            groups=2,
            numa_per_group=2,
            sockets_per_numa=1,
            cores_per_socket=8,
            pus_per_core=1,
            l3="20480K",
            l2="256K",
            l1="32K",
            clock_hz=2.6e9,
            interconnect_gbps=6.5,
            os_policy="consolidate",
        )
    )


_REGISTRY: dict[str, Callable[[], Topology]] = {
    "SMP12E5": smp12e5,
    "SMP20E7": smp20e7,
    "SMP12E5-4S": smp12e5_4s,
    "SMP20E7-4S": smp20e7_4s,
    "FIG2-4S32C": fig2_machine,
}


def list_machines() -> list[str]:
    """Names accepted by :func:`machine_by_name`."""
    return sorted(_REGISTRY)


def machine_by_name(name: str, *, fresh: bool = False) -> Topology:
    """A preset by (case-insensitive) name — the shared memoized instance.

    ``fresh=True`` builds a brand-new tree instead (for callers that want
    to mutate or deliberately corrupt a topology).
    """
    key = name.upper()
    try:
        builder = _REGISTRY[key]
    except KeyError:
        raise TopologyError(
            f"unknown machine {name!r}; known: {', '.join(list_machines())}"
        ) from None
    if fresh:
        return builder.__wrapped__()
    return builder()
