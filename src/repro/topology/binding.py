"""CPU-binding helpers (the hwloc ``set_cpubind`` analogue).

A binding is simply a cpuset :class:`~repro.util.bitmap.Bitmap` that the
simulated OS scheduler must honour. The helpers here validate cpusets
against a topology and implement hwloc's ``singlify`` (pick one PU out of
a set, used for strict one-thread-per-core binding).
"""

from __future__ import annotations

from repro.errors import BindingError
from repro.topology.objects import ObjType, TopoObject
from repro.topology.tree import Topology
from repro.util.bitmap import Bitmap

__all__ = ["validate_cpuset", "singlify", "cpuset_of", "full_cpuset"]


def full_cpuset(topology: Topology) -> Bitmap:
    """The set of every PU in the machine (the "unbound" cpuset)."""
    return topology.root.cpuset


def validate_cpuset(topology: Topology, cpuset: Bitmap) -> Bitmap:
    """Check *cpuset* is non-empty and within the machine; return it."""
    if not cpuset:
        raise BindingError("empty cpuset")
    if not cpuset.issubset(topology.root.cpuset):
        extra = cpuset - topology.root.cpuset
        raise BindingError(f"cpuset references unknown PUs: {extra.to_list()}")
    return cpuset


def singlify(cpuset: Bitmap) -> Bitmap:
    """Reduce *cpuset* to its first PU (hwloc_bitmap_singlify)."""
    first = cpuset.first()
    if first < 0:
        raise BindingError("cannot singlify an empty cpuset")
    return Bitmap.single(first)


def cpuset_of(obj: TopoObject) -> Bitmap:
    """Cpuset of a topology object, with a helpful error for PU-less nodes."""
    if not obj.cpuset and obj.type is not ObjType.PU:
        raise BindingError(f"{obj!r} covers no PUs")
    return obj.cpuset
