"""The :class:`Topology` wrapper — hwloc-like queries over the object tree.

A topology is *finalized* at construction: depths, logical indices and
cpusets are computed once, and convenience tables (PUs by os-index, cores,
NUMA nodes, per-level arities) are cached. TreeMatch consumes the
``level_arities`` view of the tree.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import TopologyError
from repro.topology.objects import ObjType, TopoObject
from repro.util.bitmap import Bitmap

__all__ = ["Topology"]


class Topology:
    """A finalized hardware topology tree rooted at a MACHINE object."""

    def __init__(self, root: TopoObject, *, name: str = "machine") -> None:
        if root.type is not ObjType.MACHINE:
            raise TopologyError("topology root must be a Machine object")
        self.root = root
        self.name = name or "machine"
        self._finalize()

    # -- construction ------------------------------------------------------

    def _finalize(self) -> None:
        self._levels: list[list[TopoObject]] = []
        self._assign_depths()
        self._assign_indices_and_cpusets()
        self._pus: list[TopoObject] = [
            o for o in self.iter_objects() if o.type is ObjType.PU
        ]
        self._pus.sort(key=lambda o: o.os_index)
        self._pu_by_os: dict[int, TopoObject] = {p.os_index: p for p in self._pus}
        if len(self._pu_by_os) != len(self._pus):
            raise TopologyError("duplicate PU os_index")
        # Structure is frozen once finalized, so type queries can be
        # memoized — simulator/scheduler constructors call numa_nodes and
        # pus on every machine build, thousands of times per sweep.
        self._by_type: dict[ObjType, list[TopoObject]] = {}
        self._cores: list[TopoObject] = self.objects_by_type(ObjType.CORE)

    def _assign_depths(self) -> None:
        self.root.depth = 0
        level = [self.root]
        while level:
            self._levels.append(level)
            nxt: list[TopoObject] = []
            for node in level:
                for child in node.children:
                    child.depth = node.depth + 1
                    nxt.append(child)
            # A balanced tree is required: all leaves are PUs at equal depth.
            level = nxt
        for leaf in self.root.leaves():
            if leaf.type is not ObjType.PU:
                raise TopologyError(
                    f"topology leaf {leaf.type.value} is not a PU; "
                    "every branch must terminate in PUs"
                )
        leaf_depths = {leaf.depth for leaf in self.root.leaves()}
        if len(leaf_depths) > 1:
            raise TopologyError(f"unbalanced topology: PU depths {leaf_depths}")

    def _assign_indices_and_cpusets(self) -> None:
        counters: dict[ObjType, int] = {}
        for node in self.iter_objects():
            node.logical_index = counters.get(node.type, 0)
            counters[node.type] = node.logical_index + 1
            if node.type is ObjType.PU and node.os_index < 0:
                node.os_index = node.logical_index
        # cpusets bottom-up
        for level in reversed(self._levels):
            for node in level:
                if node.type is ObjType.PU:
                    node.cpuset = Bitmap.single(node.os_index)
                else:
                    cs = Bitmap()
                    for child in node.children:
                        cs = cs | child.cpuset
                    node.cpuset = cs

    # -- traversal ----------------------------------------------------------

    def iter_objects(self) -> Iterator[TopoObject]:
        """Depth-first pre-order over the whole tree, root included."""
        yield self.root
        yield from self.root.descendants()

    @property
    def tree_depth(self) -> int:
        """Number of levels (root level counts as 1)."""
        return len(self._levels)

    def objects_at_depth(self, depth: int) -> list[TopoObject]:
        if not 0 <= depth < self.tree_depth:
            raise TopologyError(f"depth {depth} outside [0, {self.tree_depth})")
        return list(self._levels[depth])

    def objects_by_type(self, obj_type: ObjType) -> list[TopoObject]:
        try:
            cached = self._by_type[obj_type]
        except KeyError:
            cached = [o for o in self.iter_objects() if o.type is obj_type]
            self._by_type[obj_type] = cached
        return list(cached)

    def nbobjs_by_type(self, obj_type: ObjType) -> int:
        return len(self.objects_by_type(obj_type))

    # -- PU / core shortcuts -------------------------------------------------

    @property
    def pus(self) -> list[TopoObject]:
        """All PUs sorted by os_index."""
        return list(self._pus)

    @property
    def cores(self) -> list[TopoObject]:
        return list(self._cores)

    @property
    def n_pus(self) -> int:
        return len(self._pus)

    @property
    def n_cores(self) -> int:
        return len(self._cores)

    def pu(self, os_index: int) -> TopoObject:
        try:
            return self._pu_by_os[os_index]
        except KeyError:
            raise TopologyError(f"no PU with os_index {os_index}") from None

    def core_of_pu(self, os_index: int) -> TopoObject:
        pu = self.pu(os_index)
        core = pu.ancestor_of_type(ObjType.CORE)
        if core is None:
            raise TopologyError(f"PU {os_index} has no Core ancestor")
        return core

    def numa_of_pu(self, os_index: int) -> TopoObject | None:
        return self.pu(os_index).ancestor_of_type(ObjType.NUMANODE)

    def socket_of_pu(self, os_index: int) -> TopoObject | None:
        return self.pu(os_index).ancestor_of_type(ObjType.PACKAGE)

    def l3_of_pu(self, os_index: int) -> TopoObject | None:
        return self.pu(os_index).ancestor_of_type(ObjType.L3)

    def siblings_of_pu(self, os_index: int) -> list[TopoObject]:
        """Other PUs on the same core (hyperthread siblings)."""
        core = self.core_of_pu(os_index)
        return [p for p in core.leaves() if p.os_index != os_index]

    @property
    def has_hyperthreading(self) -> bool:
        return any(len(core.leaves()) > 1 for core in self._cores)

    @property
    def numa_nodes(self) -> list[TopoObject]:
        return self.objects_by_type(ObjType.NUMANODE)

    @property
    def sockets(self) -> list[TopoObject]:
        return self.objects_by_type(ObjType.PACKAGE)

    # -- TreeMatch view -------------------------------------------------------

    def level_arities(self) -> list[int]:
        """Arity of each level from the root downwards.

        Element ``i`` is the (uniform) number of children of every object at
        depth ``i``. TreeMatch requires this uniformity; a ragged level
        raises :class:`TopologyError`.
        """
        arities: list[int] = []
        for depth in range(self.tree_depth - 1):
            counts = {len(o.children) for o in self._levels[depth]}
            if len(counts) != 1:
                raise TopologyError(
                    f"ragged arity at depth {depth}: {sorted(counts)}"
                )
            arities.append(counts.pop())
        return arities

    def common_ancestor_depth(self, pu_a: int, pu_b: int) -> int:
        """Depth of the deepest common ancestor of two PUs (root = 0)."""
        a, b = self.pu(pu_a), self.pu(pu_b)
        chain_a = [a, *a.ancestors()]
        chain_b = {id(o) for o in [b, *b.ancestors()]}
        for node in chain_a:
            if id(node) in chain_b:
                return node.depth
        raise TopologyError("PUs share no ancestor — corrupt tree")

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Topology {self.name!r}: {len(self.numa_nodes)} NUMA, "
            f"{self.n_cores} cores, {self.n_pus} PUs>"
        )
