"""Synthetic topology builder.

:class:`TopologySpec` describes a regular machine (the only kind the paper's
testbeds are): optional blade groups, NUMA nodes, sockets, shared L3 per
socket, per-core L2/L1, cores, and PUs per core (hyperthreads). The builder
emits a finalized :class:`~repro.topology.tree.Topology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.topology.objects import CacheAttrs, ObjType, TopoObject
from repro.topology.tree import Topology
from repro.util.units import parse_size

__all__ = ["TopologySpec", "build_topology"]


@dataclass(frozen=True)
class TopologySpec:
    """Shape and performance parameters of a synthetic machine.

    Structural parameters give the count of children at each level;
    performance parameters (clock, interconnect bandwidth, latencies) are
    stored as attributes on the machine object and consumed by the
    simulator's cost model.
    """

    name: str
    groups: int = 1  # blades / NUMAlink routers (0 ⇒ omit level)
    numa_per_group: int = 1
    sockets_per_numa: int = 1
    cores_per_socket: int = 8
    pus_per_core: int = 1
    l3: str | int = "20480K"
    l2: str | int = "256K"
    l1: str | int = "32K"
    cache_line: int = 64
    clock_hz: float = 2.6e9
    interconnect_gbps: float = 6.5  # NUMAlink bandwidth, GB/s
    memory_per_numa: str | int = "32G"
    os_policy: str = "consolidate"  # default OS scheduler behaviour
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for fname in (
            "groups",
            "numa_per_group",
            "sockets_per_numa",
            "cores_per_socket",
            "pus_per_core",
        ):
            if getattr(self, fname) < 1:
                raise TopologyError(f"{fname} must be >= 1")
        if self.clock_hz <= 0 or self.interconnect_gbps <= 0:
            raise TopologyError("clock_hz and interconnect_gbps must be > 0")
        if self.os_policy not in ("consolidate", "spread"):
            raise TopologyError(f"unknown os_policy {self.os_policy!r}")

    @property
    def n_numa(self) -> int:
        return self.groups * self.numa_per_group

    @property
    def n_cores(self) -> int:
        return self.n_numa * self.sockets_per_numa * self.cores_per_socket

    @property
    def n_pus(self) -> int:
        return self.n_cores * self.pus_per_core


def build_topology(spec: TopologySpec) -> Topology:
    """Materialize *spec* into a finalized topology tree.

    The emitted level structure is::

        Machine [→ Group]* → NUMANode → Package → L3 → L2 → L1 → Core → PU

    L2/L1 are private per core; as in hwloc they sit immediately above the
    core they serve, which keeps the tree balanced with uniform arities.
    """
    machine = TopoObject(
        ObjType.MACHINE,
        name=spec.name,
        attrs={
            "clock_hz": spec.clock_hz,
            "interconnect_gbps": spec.interconnect_gbps,
            "os_policy": spec.os_policy,
            **dict(spec.attrs),
        },
    )
    l3 = CacheAttrs(parse_size(spec.l3), line=spec.cache_line)
    l2 = CacheAttrs(parse_size(spec.l2), line=spec.cache_line)
    l1 = CacheAttrs(parse_size(spec.l1), line=spec.cache_line)

    pu_index = 0
    group_parents: list[TopoObject]
    if spec.groups > 1:
        group_parents = [
            machine.add_child(TopoObject(ObjType.GROUP, name=f"Blade {g}"))
            for g in range(spec.groups)
        ]
    else:
        group_parents = [machine]

    for group in group_parents:
        for _ in range(spec.numa_per_group):
            numa = group.add_child(
                TopoObject(
                    ObjType.NUMANODE,
                    attrs={"memory": parse_size(spec.memory_per_numa)},
                )
            )
            for _ in range(spec.sockets_per_numa):
                socket = numa.add_child(TopoObject(ObjType.PACKAGE))
                l3_obj = socket.add_child(TopoObject(ObjType.L3, cache=l3))
                for _ in range(spec.cores_per_socket):
                    l2_obj = l3_obj.add_child(TopoObject(ObjType.L2, cache=l2))
                    l1_obj = l2_obj.add_child(TopoObject(ObjType.L1, cache=l1))
                    core = l1_obj.add_child(TopoObject(ObjType.CORE))
                    for _ in range(spec.pus_per_core):
                        core.add_child(
                            TopoObject(ObjType.PU, os_index=pu_index)
                        )
                        pu_index += 1

    topo = Topology(machine, name=spec.name)
    topo.spec = spec  # type: ignore[attr-defined]
    return topo
