"""NUMA distance matrices.

The SGI NUMAlink interconnect of both testbeds is a tree of routers: the
latency between two NUMA nodes grows with the number of router hops, i.e.
with the height of their lowest common ancestor in a (virtual) binary
router tree over the node ids. We reproduce that with the conventional
ACPI SLIT scaling: 10 on the diagonal, ``10 + hop_cost * hops`` elsewhere.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.errors import TopologyError
from repro.topology.tree import Topology

__all__ = ["numa_distance_matrix", "router_hops"]

LOCAL_DISTANCE = 10.0

#: topology → {hop_cost: read-only matrix}. Weak keys: memoized machine
#: presets live for the process, ad-hoc test topologies get collected.
_MATRIX_CACHE: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def router_hops(a: int, b: int) -> int:
    """Round-trip router hops between NUMA node ids in a binary router tree.

    Nodes paired under one router are 1 hop apart; each extra tree level
    adds one hop in each direction.

    >>> router_hops(0, 1)
    1
    >>> router_hops(0, 2)
    2
    >>> router_hops(0, 4)
    3
    """
    if a == b:
        return 0
    return (a ^ b).bit_length()


def numa_distance_matrix(topology: Topology, *, hop_cost: float = 5.0) -> np.ndarray:
    """SLIT-style distance matrix over the topology's NUMA nodes.

    Entry ``[i, j]`` is relative memory-access latency from node *i* to
    memory homed on node *j* (diagonal = 10, symmetric).

    Memoized per (topology, hop_cost): with machine presets shared across
    experiment cells, every :class:`~repro.sim.memory.MemorySystem` and
    TreeMatch ordering pass would otherwise rebuild the same matrix. The
    returned array is marked read-only; callers needing a private copy
    must ``.copy()`` it.
    """
    per_topo = _MATRIX_CACHE.setdefault(topology, {})
    cached = per_topo.get(hop_cost)
    if cached is not None:
        return cached
    n = len(topology.numa_nodes)
    if n == 0:
        raise TopologyError("topology has no NUMA nodes")
    dist = np.full((n, n), LOCAL_DISTANCE)
    for i in range(n):
        for j in range(n):
            if i != j:
                dist[i, j] = LOCAL_DISTANCE + hop_cost * router_hops(i, j)
    dist.setflags(write=False)
    per_topo[hop_cost] = dist
    return dist
