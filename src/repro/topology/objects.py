"""Topology object types — the nodes of the hardware tree.

Mirrors hwloc's object model: every node carries a type, a logical index
(rank among same-type siblings in tree order), a cpuset of the PUs beneath
it, and optional type-specific attributes (cache geometry, memory size).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import TopologyError
from repro.util.bitmap import Bitmap

__all__ = ["ObjType", "CacheAttrs", "TopoObject"]


class ObjType(enum.Enum):
    """Hardware object kinds, ordered from outermost to innermost."""

    MACHINE = "Machine"
    GROUP = "Group"  # blades / NUMAlink routers
    NUMANODE = "NUMANode"
    PACKAGE = "Package"  # a socket
    L3 = "L3"
    L2 = "L2"
    L1 = "L1"
    CORE = "Core"
    PU = "PU"  # hardware thread

    @property
    def is_cache(self) -> bool:
        return self in (ObjType.L3, ObjType.L2, ObjType.L1)


#: Canonical outer-to-inner ordering used to validate tree construction.
TYPE_ORDER: dict[ObjType, int] = {t: i for i, t in enumerate(ObjType)}


@dataclass(frozen=True)
class CacheAttrs:
    """Cache geometry. ``size`` in bytes, ``line`` in bytes."""

    size: int
    line: int = 64
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.size <= 0 or self.line <= 0:
            raise TopologyError("cache size and line must be positive")


@dataclass(eq=False)
class TopoObject:
    """One node in a hardware topology tree.

    Identity semantics (``eq=False``): two distinct sockets with identical
    shape are still different objects.
    """

    type: ObjType
    logical_index: int = 0
    os_index: int = -1
    name: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)
    cache: CacheAttrs | None = None
    children: list[TopoObject] = field(default_factory=list)
    parent: TopoObject | None = field(default=None, repr=False)
    cpuset: Bitmap = field(default_factory=Bitmap)
    depth: int = 0

    def add_child(self, child: TopoObject) -> TopoObject:
        if TYPE_ORDER[child.type] <= TYPE_ORDER[self.type]:
            raise TopologyError(
                f"cannot nest {child.type.value} under {self.type.value}"
            )
        child.parent = self
        self.children.append(child)
        return child

    # -- ancestry ----------------------------------------------------------

    def ancestors(self) -> list[TopoObject]:
        """Chain of ancestors from parent up to the machine root."""
        out: list[TopoObject] = []
        node = self.parent
        while node is not None:
            out.append(node)
            node = node.parent
        return out

    def ancestor_of_type(self, obj_type: ObjType) -> TopoObject | None:
        for anc in self.ancestors():
            if anc.type is obj_type:
                return anc
        return None

    def descendants(self) -> list[TopoObject]:
        """All strict descendants in depth-first pre-order."""
        out: list[TopoObject] = []
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(node.children))
        return out

    def leaves(self) -> list[TopoObject]:
        """The PUs beneath this object (or itself if it is a PU)."""
        if not self.children:
            return [self]
        return [d for d in self.descendants() if not d.children]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f"#{self.os_index}" if self.os_index >= 0 else f"L{self.logical_index}"
        return f"<{self.type.value}{tag} cpuset={self.cpuset.to_list()!r}>"
