"""Portable hardware-topology substrate (the paper's hwloc analogue).

Builds tree-shaped machine descriptions (machine → NUMA node → socket →
caches → core → PU), exposes hwloc-like traversal and cpuset queries, and
ships the two testbed presets from Table I of the paper.
"""

from repro.topology.builder import TopologySpec, build_topology
from repro.topology.distance import numa_distance_matrix
from repro.topology.machines import (
    fig2_machine,
    list_machines,
    machine_by_name,
    smp12e5,
    smp12e5_4s,
    smp20e7,
    smp20e7_4s,
)
from repro.topology.objects import CacheAttrs, ObjType, TopoObject
from repro.topology.render import render_ascii, render_mapping
from repro.topology.serialize import topology_from_dict, topology_to_dict
from repro.topology.tree import Topology

__all__ = [
    "ObjType",
    "TopoObject",
    "CacheAttrs",
    "Topology",
    "TopologySpec",
    "build_topology",
    "numa_distance_matrix",
    "smp12e5",
    "smp20e7",
    "smp12e5_4s",
    "smp20e7_4s",
    "fig2_machine",
    "machine_by_name",
    "list_machines",
    "render_ascii",
    "render_mapping",
    "topology_to_dict",
    "topology_from_dict",
]
