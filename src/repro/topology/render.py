"""ASCII rendering of topologies and placements.

``render_ascii`` is an lstopo-style tree dump; ``render_mapping``
reproduces the flavour of Fig. 2 of the paper — for each blade/socket,
the cores with the task labels placed on them.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.topology.objects import ObjType, TopoObject
from repro.topology.tree import Topology
from repro.util.units import format_size

__all__ = ["render_ascii", "render_mapping"]


def _label(obj: TopoObject) -> str:
    if obj.type is ObjType.MACHINE:
        return f"Machine ({obj.name})" if obj.name else "Machine"
    if obj.type is ObjType.PU:
        return f"PU P#{obj.os_index}"
    if obj.type.is_cache and obj.cache is not None:
        return f"{obj.type.value} ({format_size(obj.cache.size)})"
    if obj.type is ObjType.NUMANODE and "memory" in obj.attrs:
        return (
            f"NUMANode L#{obj.logical_index} "
            f"({format_size(obj.attrs['memory'])})"
        )
    if obj.name:
        return f"{obj.type.value} {obj.name!r}"
    return f"{obj.type.value} L#{obj.logical_index}"


def render_ascii(topology: Topology, *, max_depth: int | None = None) -> str:
    """Indented tree dump of the topology, lstopo-style."""
    lines: list[str] = []

    def visit(obj: TopoObject, indent: int) -> None:
        if max_depth is not None and indent > max_depth:
            return
        lines.append("  " * indent + _label(obj))
        for child in obj.children:
            visit(child, indent + 1)

    visit(topology.root, 0)
    return "\n".join(lines)


def render_mapping(
    topology: Topology,
    placement: Mapping[int, int],
    thread_names: Mapping[int, str] | None = None,
    *,
    reserved: Mapping[int, str] | None = None,
) -> str:
    """Fig. 2-style placement rendering.

    *placement* maps thread id → PU os-index. *thread_names* supplies the
    task labels of Fig. 2 (e.g. ``"gmm split"``); *reserved* marks PUs set
    aside for other purposes (control threads) with a note.
    """
    names = thread_names or {}
    notes = reserved or {}
    by_pu: dict[int, list[int]] = {}
    for tid, pu in placement.items():
        by_pu.setdefault(pu, []).append(tid)

    lines: list[str] = [f"Machine {topology.name}"]
    sockets = topology.sockets or topology.numa_nodes
    for socket in sockets:
        blade = socket.ancestor_of_type(ObjType.GROUP)
        prefix = f"{blade.name} / " if blade is not None and blade.name else ""
        lines.append(f"  {prefix}Socket L#{socket.logical_index} "
                     f"[PUs {socket.cpuset.to_list()}]")
        for core in (o for o in socket.descendants() if o.type is ObjType.CORE):
            for pu in core.leaves():
                tags: list[str] = []
                for tid in sorted(by_pu.get(pu.os_index, [])):
                    label = names.get(tid, "")
                    tags.append(f"{tid}:{label}" if label else str(tid))
                if pu.os_index in notes:
                    tags.append(f"<{notes[pu.os_index]}>")
                body = "  ".join(tags) if tags else "-"
                lines.append(f"    PU P#{pu.os_index:<3} {body}")
    return "\n".join(lines)
