"""Topology (de)serialization to plain dicts (JSON-compatible).

This is the analogue of hwloc's XML export: it lets experiments record
exactly which machine description produced a result, and lets tests
round-trip topologies.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import TopologyError
from repro.topology.objects import CacheAttrs, ObjType, TopoObject
from repro.topology.tree import Topology

__all__ = [
    "topology_to_dict",
    "topology_from_dict",
    "save_topology",
    "load_topology",
]

FORMAT_VERSION = 1


def _obj_to_dict(obj: TopoObject) -> dict[str, Any]:
    d: dict[str, Any] = {"type": obj.type.value}
    if obj.os_index >= 0:
        d["os_index"] = obj.os_index
    if obj.name:
        d["name"] = obj.name
    if obj.attrs:
        d["attrs"] = dict(obj.attrs)
    if obj.cache is not None:
        d["cache"] = {
            "size": obj.cache.size,
            "line": obj.cache.line,
            "associativity": obj.cache.associativity,
        }
    if obj.children:
        d["children"] = [_obj_to_dict(c) for c in obj.children]
    return d


def topology_to_dict(topology: Topology) -> dict[str, Any]:
    """Serialize to a JSON-compatible dict (inverse of
    :func:`topology_from_dict`)."""
    return {
        "format": FORMAT_VERSION,
        "name": topology.name,
        "root": _obj_to_dict(topology.root),
    }


def _obj_from_dict(d: dict[str, Any]) -> TopoObject:
    try:
        obj_type = ObjType(d["type"])
    except (KeyError, ValueError) as exc:
        raise TopologyError(f"bad object record {d!r}") from exc
    cache = None
    if "cache" in d:
        c = d["cache"]
        cache = CacheAttrs(
            size=int(c["size"]),
            line=int(c.get("line", 64)),
            associativity=int(c.get("associativity", 8)),
        )
    obj = TopoObject(
        obj_type,
        os_index=int(d.get("os_index", -1)),
        name=str(d.get("name", "")),
        attrs=dict(d.get("attrs", {})),
        cache=cache,
    )
    for child_d in d.get("children", []):
        obj.add_child(_obj_from_dict(child_d))
    return obj


def save_topology(topology: Topology, path: str | Path) -> None:
    """Write the topology as JSON (the hwloc XML-export analogue)."""
    Path(path).write_text(json.dumps(topology_to_dict(topology), indent=1))


def load_topology(path: str | Path) -> Topology:
    """Read a topology JSON file written by :func:`save_topology`."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise TopologyError(f"cannot load topology from {path}: {exc}") from exc
    return topology_from_dict(data)


def topology_from_dict(data: dict[str, Any]) -> Topology:
    """Rebuild a finalized topology from :func:`topology_to_dict` output."""
    if data.get("format") != FORMAT_VERSION:
        raise TopologyError(f"unsupported topology format {data.get('format')!r}")
    if "root" not in data:
        raise TopologyError("missing 'root' record")
    root = _obj_from_dict(data["root"])
    return Topology(root, name=str(data.get("name", "machine")))
