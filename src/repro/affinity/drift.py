"""Drift scoring and the hysteresis trigger for adaptive remapping.

The controller must answer one question per window: *has the
communication pattern moved far enough from the one the current
placement was derived from to justify paying for a remap?* Raw
per-window scores are noisy (a single barrier-heavy window looks like a
phase change), so the decision runs through three classic control-loop
guards, in order:

1. **EWMA smoothing** — ``ewma = alpha * score + (1 - alpha) * ewma``;
2. **hysteresis band** — trigger only above ``high``, and only re-arm
   after the smoothed score falls back below ``low`` (an oscillation
   sitting inside the band can never thrash);
3. **cooldown** — at least ``cooldown`` updates between triggers, so
   the estimator has time to re-converge on the new phase before the
   detector may fire again.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AffinityError

__all__ = ["drift_score", "DriftConfig", "DriftDetector"]


def drift_score(live: np.ndarray, reference: np.ndarray) -> float:
    """Total-variation distance between two comm-matrix *shapes*.

    Both matrices are normalized to unit mass first, so the score is
    scale-free in ``[0, 1]`` — live telemetry counts touched bytes while
    a static dependency matrix counts declared bytes, and only the
    *distribution* of traffic over thread pairs is comparable. Returns
    0.0 when either side is empty (no evidence of change).
    """
    a = np.asarray(live, dtype=np.float64)
    b = np.asarray(reference, dtype=np.float64)
    if a.shape != b.shape:
        raise AffinityError(
            f"drift_score shapes differ: {a.shape} vs {b.shape}"
        )
    sa = a.sum()
    sb = b.sum()
    if sa <= 0.0 or sb <= 0.0:
        return 0.0
    return float(0.5 * np.abs(a / sa - b / sb).sum())


@dataclass(frozen=True)
class DriftConfig:
    """Hysteresis parameters; see the module docstring for roles.

    Defaults are tuned on the phase-shift experiment
    (``repro-paper adapt``): a phase change moves the smoothed score
    well above 0.25 within two windows, while per-window noise on a
    stable phase stays under 0.1.
    """

    alpha: float = 0.5
    high: float = 0.25
    low: float = 0.10
    cooldown: int = 2

    def __post_init__(self) -> None:
        if not (0.0 < self.alpha <= 1.0):
            raise AffinityError(f"alpha must be in (0, 1], got {self.alpha}")
        if not (0.0 <= self.low <= self.high):
            raise AffinityError(
                f"need 0 <= low <= high, got low={self.low} high={self.high}"
            )
        if self.cooldown < 0:
            raise AffinityError(f"cooldown must be >= 0, got {self.cooldown}")


class DriftDetector:
    """The EWMA + hysteresis + cooldown trigger.

    Starts armed with an empty history; :meth:`update` folds one
    window's drift score and returns True when a remap should fire.
    """

    __slots__ = ("config", "ewma", "armed", "cooldown_left", "triggers", "updates")

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config or DriftConfig()
        #: Smoothed drift score; None before the first update.
        self.ewma: float | None = None
        self.armed = True
        self.cooldown_left = 0
        self.triggers = 0
        self.updates = 0

    def reset(self) -> None:
        """Forget the smoothing history (but not the trigger counts).

        Called by the controller after every remap: the EWMA tracked
        drift against the *old* reference, which the remap just
        replaced, so carrying it over would either re-trigger on stale
        history or (worse) keep the detector disarmed because the old
        scores never decay below ``low``. Cooldown is preserved — it
        guards real time between remaps, not reference identity.
        """
        self.ewma = None
        self.armed = True

    def update(self, score: float) -> bool:
        """Fold one window's drift *score*; True => trigger a remap."""
        if not (0.0 <= score <= 1.0 + 1e-9):
            raise AffinityError(f"drift score out of range: {score}")
        cfg = self.config
        self.updates += 1
        if self.ewma is None:
            self.ewma = float(score)
        else:
            self.ewma = cfg.alpha * float(score) + (1.0 - cfg.alpha) * self.ewma
        if self.cooldown_left > 0:
            self.cooldown_left -= 1
        if not self.armed and self.ewma <= cfg.low:
            self.armed = True
        if self.armed and self.cooldown_left == 0 and self.ewma >= cfg.high:
            self.armed = False
            self.cooldown_left = cfg.cooldown
            self.triggers += 1
            return True
        return False
