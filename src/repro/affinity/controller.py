"""The closed loop: windowed execution, drift detection, warm remap.

:class:`AdaptiveController` owns a machine's run loop, replacing the
single ``machine.run()`` call with a sequence of
:meth:`~repro.sim.machine.SimMachine.run_window` epochs. After each
window it folds :class:`~repro.affinity.telemetry.WindowTelemetry` into
a live comm-matrix estimate, scores drift against the matrix the
current placement was derived from
(:func:`~repro.affinity.drift.drift_score` through a
:class:`~repro.affinity.drift.DriftDetector`), and on a trigger re-runs
TreeMatch **warm-started** from the current placement
(``treematch_map(..., warm_start=...)`` seeds ``refine_groups`` with
the live groups) and re-binds *only* the threads whose PU changed.

Every decision is recorded both in :attr:`AdaptiveController.decisions`
and in an :class:`~repro.sim.observe.MetricsRegistry`
(``adapt_remaps_total``, ``adapt_threads_moved_total``,
``adapt_drift_score``, ...), so adaptive runs are inspectable the same
way observed static runs are.

On a phase-stable program the estimate converges to the reference and
the detector never fires: the controller performs **zero** remaps and
the execution is bit-identical to an uncontrolled windowed run (the
differential family of ``tests/test_affinity_controller.py`` enforces
this across all three simulator cores).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.affinity.drift import DriftConfig, DriftDetector, drift_score
from repro.affinity.telemetry import WindowTelemetry
from repro.errors import AffinityError, MappingError
from repro.sim.observe import MetricsRegistry
from repro.treematch.commmatrix import CommunicationMatrix
from repro.treematch.mapping import Placement, treematch_map
from repro.util.bitmap import Bitmap

__all__ = ["ControllerConfig", "RemapDecision", "AdaptiveController"]


@dataclass(frozen=True)
class ControllerConfig:
    """Epoch sizing and estimator knobs for the adaptive loop.

    ``window_cycles`` is the epoch length in simulated cycles;
    ``decay`` is the telemetry estimator's per-window retention;
    ``min_window_bytes`` gates calibration (no reference is taken while
    the estimate holds less traffic than this); ``calibrate_windows``
    is how many traffic-bearing windows the estimator folds before a
    reference is adopted — both at startup and after every remap —
    which smooths the burst-to-burst variation of pipelined programs
    out of the baseline; ``gather_windows`` is how many windows the
    controller keeps observing *after* a drift trigger before actually
    remapping, so the comm matrix handed to TreeMatch is drawn from the
    new phase alone (at trigger time the decayed estimate still blends
    the old phase — the mismatched phase runs slower, so its bytes
    arrive slower, and old mass lingers); ``drift`` nests the
    :class:`~repro.affinity.drift.DriftConfig` hysteresis parameters.
    """

    window_cycles: float = 5e6
    max_windows: int = 100_000
    decay: float = 0.5
    min_window_bytes: float = 1.0
    calibrate_windows: int = 4
    gather_windows: int = 2
    drift: DriftConfig = DriftConfig()

    def __post_init__(self) -> None:
        if self.window_cycles <= 0:
            raise AffinityError(
                f"window_cycles must be positive, got {self.window_cycles}"
            )
        if self.max_windows <= 0:
            raise AffinityError(
                f"max_windows must be positive, got {self.max_windows}"
            )
        if self.calibrate_windows <= 0:
            raise AffinityError(
                f"calibrate_windows must be positive, got "
                f"{self.calibrate_windows}"
            )
        if self.gather_windows <= 0:
            raise AffinityError(
                f"gather_windows must be positive, got {self.gather_windows}"
            )


@dataclass
class RemapDecision:
    """One controller trigger: when it fired, what it cost."""

    window: int
    drift: float
    moved: int
    warm: bool

    def to_dict(self) -> dict:
        return {
            "window": self.window,
            "drift": self.drift,
            "moved": self.moved,
            "warm": self.warm,
        }


class AdaptiveController:
    """Drive a prepared machine through windowed epochs with remapping.

    Construct via :meth:`for_orwl` / :meth:`for_openmp` (which split
    the runtime's ``run()`` around the simulator loop), or directly for
    a hand-built machine. ``placement=None`` starts uncalibrated: the
    first window with enough traffic becomes the reference and no remap
    is charged for it.
    """

    def __init__(
        self,
        machine,
        topology,
        compute_threads,
        control_threads=(),
        *,
        placement: Placement | None = None,
        n_control: int = 0,
        control_owners: list[int] | None = None,
        config: ControllerConfig | None = None,
        registry: MetricsRegistry | None = None,
        finish=None,
    ) -> None:
        if not compute_threads:
            raise AffinityError("controller needs at least one compute thread")
        self.machine = machine
        self.topology = topology
        self.compute_threads = list(compute_threads)
        self.control_threads = list(control_threads)
        self.placement = placement
        self.n_control = n_control
        self.control_owners = control_owners
        self.config = config or ControllerConfig()
        self.registry = registry or MetricsRegistry()
        self.telemetry = WindowTelemetry(
            len(self.compute_threads), decay=self.config.decay
        )
        self.detector = DriftDetector(self.config.drift)
        #: Comm matrix (ndarray) the current placement was derived from;
        #: None while (re)calibrating.
        self.reference = None
        self._cal_left = self.config.calibrate_windows
        # Windows left to observe before the pending (triggered) remap.
        self._gather_left = 0
        self._pending_score = 0.0
        #: Every remap the controller performed, in order.
        self.decisions: list[RemapDecision] = []
        self.windows_run = 0
        self._finish_cb = finish
        self._ran = False
        # Pre-created metrics so the per-window path touches no
        # registry machinery.
        self._g_drift = self.registry.gauge("adapt_drift_score")
        self._g_ewma = self.registry.gauge("adapt_drift_ewma")
        self._c_windows = self.registry.counter("adapt_windows_total")
        self._c_bytes = self.registry.counter("adapt_window_bytes_total")
        self._c_remaps = self.registry.counter("adapt_remaps_total")
        self._c_moved = self.registry.counter("adapt_threads_moved_total")

    # -- runtime adapters ---------------------------------------------------

    @classmethod
    def for_orwl(
        cls,
        runtime,
        *,
        config: ControllerConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> "AdaptiveController":
        """Adopt an (un-run) ORWL runtime; :meth:`run` returns its
        :class:`~repro.orwl.runtime.RunResult`.

        Calls ``runtime.prepare_run()`` — scheduling, thread spawn and
        the initial static affinity pipeline happen exactly as in
        ``runtime.run()``; only the simulator loop is taken over.
        """
        runtime.prepare_run()
        machine = runtime.machine
        compute = [t for t in machine.threads if t.kind == "compute"]
        control = [t for t in machine.threads if t.kind == "control"]
        if runtime.affinity.options.get("use_control_threads", True):
            n_control = len(runtime.locations)
            owners = [loc.owner.op_id for loc in runtime.locations]
        else:
            n_control = 0
            owners = []
        return cls(
            machine,
            runtime.topology,
            compute,
            control,
            placement=runtime.affinity.placement,
            n_control=n_control,
            control_owners=owners,
            config=config,
            registry=registry,
            finish=runtime._build_result,
        )

    @classmethod
    def for_openmp(
        cls,
        runtime,
        master_body,
        *,
        config: ControllerConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> "AdaptiveController":
        """Adopt an (un-run) OpenMP runtime + master body; :meth:`run`
        returns its :class:`~repro.openmp.runtime.OMPResult`.
        """
        threads = runtime.prepare_run(master_body)
        return cls(
            runtime.machine,
            runtime.machine.topology,
            threads,
            (),
            placement=runtime.placement,
            config=config,
            registry=registry,
            finish=runtime._build_result,
        )

    # -- the loop -----------------------------------------------------------

    def run(self):
        """Run the machine to completion under the adaptive loop.

        Returns the adopted runtime's result object (via the finish
        callback) or, for a bare machine, elapsed seconds at the honest
        drain point (``machine.window_drained_at``), not the quantized
        window horizon.
        """
        if self._ran:
            raise AffinityError("AdaptiveController.run may only be called once")
        self._ran = True
        machine = self.machine
        machine.monitors.append(self.telemetry)
        if machine.sanitize:
            machine.attach_sanitizer()
        run_window = machine.run_window
        all_done = self._all_done
        observe = self._observe_window
        window_cycles = self.config.window_cycles
        max_windows = self.config.max_windows
        horizon = machine.engine.now + window_cycles
        windows = 0
        done = False
        while windows < max_windows:
            run_window(horizon)
            windows += 1
            if all_done():
                done = True
                break
            observe(windows)
            horizon += window_cycles
        self.windows_run = windows
        if not done:
            raise AffinityError(
                f"program did not finish within {max_windows} windows of "
                f"{window_cycles:g} cycles (deadlock, or window_cycles too "
                "small for the program)"
            )
        return self._finish()

    def _all_done(self) -> bool:
        for t in self.machine.threads:
            if t.state not in ("done", "unstarted"):
                return False
        return True

    def _observe_window(self, window: int) -> None:
        window_bytes = self.telemetry.fold_window()
        self._c_windows.inc()
        self._c_bytes.inc(window_bytes)
        estimate = self.telemetry.estimate
        if self._gather_left > 0:
            # A trigger is pending: keep folding windows of the new
            # phase so TreeMatch sees its full edge set (one slow
            # window of a pipelined program rarely exercises every
            # pair), then remap.
            self._gather_left -= 1
            if self._gather_left == 0:
                self._remap(window, self._pending_score)
            return
        if self.reference is None:
            # (Re)calibration: fold a few traffic-bearing windows into
            # the decayed estimate before adopting it as the reference,
            # so one bursty window of a pipelined program cannot become
            # the baseline. No remap is charged for calibration — drift
            # measures *change*, and there is nothing to have changed
            # from yet.
            if estimate.sum() >= self.config.min_window_bytes:
                self._cal_left -= 1
                if self._cal_left <= 0:
                    self.reference = estimate.copy()
            return
        score = drift_score(estimate, self.reference)
        self._g_drift.set(score)
        fired = self.detector.update(score)
        self._g_ewma.set(self.detector.ewma)
        if fired:
            # Phase change confirmed. Purge the old phase's decayed
            # mass (the mismatched new phase runs slower, so its bytes
            # trickle in and old mass would otherwise dominate the
            # estimate for many windows) and start gathering.
            self.telemetry.reset_to_last_window()
            self._gather_left = self.config.gather_windows
            self._pending_score = score

    def _remap(self, window: int, score: float) -> None:
        comm = CommunicationMatrix(self.telemetry.estimate.copy())
        placement, warm_won = self._compute(comm)
        moved = self._apply(placement)
        self.placement = placement
        # Recalibrate: the reference is re-adopted after
        # `calibrate_windows` more windows, once the estimate has
        # converged on the new phase as seen under the new placement.
        self.reference = None
        self._cal_left = self.config.calibrate_windows
        self.detector.reset()
        self.decisions.append(
            RemapDecision(window=window, drift=score, moved=moved, warm=warm_won)
        )
        self._c_remaps.inc()
        self._c_moved.inc(moved)

    def _compute(self, comm: CommunicationMatrix) -> tuple[Placement, bool]:
        """Map *comm*, warm-started from the current placement.

        Computes both the warm-started refinement and a cold start and
        keeps whichever costs less under the new matrix (ties prefer
        warm — fewer threads move). A small perturbation is cheapest to
        fix by refining the live groups; a wholesale phase change can
        strand pairwise-swap refinement in the old grouping's basin,
        and the cold map wins. Returns ``(placement, warm_won)``.
        """
        owners = self.control_owners
        owners = list(owners) if owners is not None else None
        cold = treematch_map(
            self.topology, comm, n_control=self.n_control, control_owners=owners
        )
        warm = self.placement
        if warm is None or not warm.groups_per_level:
            return cold, False  # no live groups to seed refinement with
        try:
            warmed = treematch_map(
                self.topology,
                comm,
                n_control=self.n_control,
                control_owners=owners,
                warm_start=warm,
            )
        except MappingError:
            # Structurally incompatible seed (e.g. a placement computed
            # for a different thread count).
            return cold, False
        if warmed.cost(self.topology, comm) <= cold.cost(self.topology, comm):
            return warmed, True
        return cold, False

    def _apply(self, placement: Placement) -> int:
        """Live-rebind only the threads whose assignment changed."""
        machine = self.machine
        moved = 0
        for tid, pu in placement.thread_to_pu.items():
            if tid >= len(self.compute_threads):
                continue
            thread = self.compute_threads[tid]
            target = Bitmap.single(pu)
            if thread.cpuset != target:
                machine.bind_thread(thread, target)
                moved += 1
        for cid, pu in placement.control_to_pu.items():
            if cid >= len(self.control_threads):
                continue
            thread = self.control_threads[cid]
            target = Bitmap.single(pu)
            if thread.cpuset != target:
                machine.bind_thread(thread, target)
                moved += 1
        return moved

    def _finish(self):
        machine = self.machine
        observer = machine.observer
        if observer is not None:
            observer.fold(machine)
        if machine.sanitizer is not None:
            machine.sanitizer.verify(machine)
        seconds = machine.window_drained_at / machine.clock_hz
        if self._finish_cb is not None:
            return self._finish_cb(seconds)
        return seconds
