"""Online communication-matrix estimation from simulator taps.

The static pipeline (paper Sec. IV) is handed the communication matrix
up front by ``orwl_dependency_get``; the adaptive controller has no such
oracle and must *estimate* it from what the program actually does.
:class:`WindowTelemetry` is a machine monitor (the duck-typed
``on_touch`` tap, native on every simulator core) that attributes each
remote touch to a producer thread via first-touch buffer ownership —
the same rule the simulated NUMA memory system uses for homing — and
folds the per-window accumulator into an exponentially decayed running
estimate at every epoch boundary.

Units are *touched bytes*, not the declared bytes of the static
dependency matrix — the two are deliberately never compared directly;
:mod:`repro.affinity.drift` normalizes both sides to unit mass and
measures *shape* change only.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AffinityError

__all__ = ["WindowTelemetry"]


class WindowTelemetry:
    """Fold per-touch taps into a per-window comm-matrix estimate.

    ``estimate[i, j]`` approximates bytes thread *i* received from
    thread *j* (the :class:`~repro.treematch.commmatrix.
    CommunicationMatrix` convention), decayed so old phases fade:
    at each :meth:`fold_window`, ``estimate = decay * estimate +
    window``. Attach by appending to ``machine.monitors`` before the
    first window.
    """

    __slots__ = (
        "n_threads",
        "decay",
        "windows",
        "estimate",
        "_acc",
        "_last",
        "_owner",
    )

    def __init__(self, n_threads: int, *, decay: float = 0.5) -> None:
        if n_threads <= 0:
            raise AffinityError(f"n_threads must be positive, got {n_threads}")
        if not (0.0 <= decay <= 1.0):
            raise AffinityError(f"decay must be in [0, 1], got {decay}")
        self.n_threads = n_threads
        self.decay = float(decay)
        #: Number of windows folded so far.
        self.windows = 0
        #: Decayed running estimate (n x n, float64).
        self.estimate = np.zeros((n_threads, n_threads))
        # Per-receiver {owner: bytes} accumulators for the in-flight
        # window. Plain dicts, not an ndarray: the tap runs once per
        # Touch op, and a python scalar add is ~5x cheaper than a numpy
        # element += — the matrix form is only materialized (into the
        # preallocated _last) once per window.
        self._acc: list[dict] = [{} for _ in range(n_threads)]
        self._last = np.zeros((n_threads, n_threads))
        # Buffer -> tid of its first toucher (the first-touch owner).
        self._owner: dict = {}

    # -- the machine-monitor tap (hot: called once per Touch op) ------------

    def on_touch(self, thread, buffer, nbytes: int, write: bool) -> None:
        tid = thread.tid
        if tid >= self.n_threads:
            return
        owner = self._owner.get(buffer)
        if owner is None:
            self._owner[buffer] = tid
        elif owner != tid and nbytes:
            row = self._acc[tid]
            row[owner] = row.get(owner, 0.0) + nbytes

    # -- epoch boundary ------------------------------------------------------

    def fold_window(self) -> float:
        """Fold the current window into the decayed estimate.

        Called by the controller at every epoch boundary. Allocation
        free: the sparse per-window dicts are written into the
        preallocated last-window matrix (a window touches at most a few
        entries per thread) and cleared in place. Returns the bytes
        observed this window.
        """
        est = self.estimate
        last = self._last
        last[:] = 0.0
        est *= self.decay
        total = 0.0
        for tid, row in enumerate(self._acc):
            if row:
                for owner, nbytes in row.items():
                    last[tid, owner] = nbytes
                    total += nbytes
                row.clear()
        est += last
        self.windows += 1
        return total

    def reset_to_last_window(self) -> None:
        """Drop decayed history: ``estimate = last folded window``.

        Called on remap so the post-remap estimate (and the reference
        the new placement is judged against) reflects only the phase
        that triggered it, not a mix of old and new phases — a mixed
        estimate would immediately re-register as drift.
        """
        np.copyto(self.estimate, self._last)
