"""``repro.affinity`` — online adaptive remapping (closing the loop).

The paper computes a placement once at ``orwl_schedule()`` and shows it
stays put; this package adds the dynamic counterpart: estimate the live
communication matrix from simulator taps
(:mod:`~repro.affinity.telemetry`), detect phase changes with EWMA
smoothing + hysteresis + cooldown (:mod:`~repro.affinity.drift`), and
on a trigger re-run TreeMatch warm-started from the current placement,
rebinding only the threads that moved
(:mod:`~repro.affinity.controller`). Works on both the ORWL and OpenMP
runtimes and on all three simulator cores.
"""

from repro.affinity.controller import (
    AdaptiveController,
    ControllerConfig,
    RemapDecision,
)
from repro.affinity.drift import DriftConfig, DriftDetector, drift_score
from repro.affinity.telemetry import WindowTelemetry

__all__ = [
    "AdaptiveController",
    "ControllerConfig",
    "RemapDecision",
    "DriftConfig",
    "DriftDetector",
    "drift_score",
    "WindowTelemetry",
]
