"""The communication matrix.

Entry ``[i, j]`` is the number of bytes thread *i* receives from (reads
that are produced by) thread *j* per iteration. TreeMatch works on the
symmetrized, zero-diagonal view: total traffic between the pair.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import MappingError
from repro.util.matrix import check_square, submatrix, symmetrize, zero_diagonal

__all__ = ["CommunicationMatrix"]


class CommunicationMatrix:
    """An ``n × n`` thread-to-thread traffic matrix with optional labels."""

    def __init__(
        self,
        data: np.ndarray | Sequence[Sequence[float]],
        labels: Sequence[str] | None = None,
    ) -> None:
        self._m = check_square(np.asarray(data, dtype=np.float64),
                               name="communication matrix")
        if labels is not None and len(labels) != self.order:
            raise MappingError(
                f"{len(labels)} labels for a matrix of order {self.order}"
            )
        self.labels: list[str] = (
            list(labels) if labels is not None
            else [f"t{i}" for i in range(self.order)]
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Mapping[tuple[int, int], float],
        labels: Sequence[str] | None = None,
    ) -> CommunicationMatrix:
        """Build from sparse ``{(receiver, producer): bytes}`` edges."""
        m = np.zeros((n, n))
        for (i, j), w in edges.items():
            if not (0 <= i < n and 0 <= j < n):
                raise MappingError(f"edge ({i}, {j}) outside order {n}")
            if w < 0:
                raise MappingError(f"negative traffic on edge ({i}, {j})")
            m[i, j] += w
        return cls(m, labels)

    @classmethod
    def stencil2d(
        cls,
        n: int,
        *,
        weight: float = 100.0,
        width: int | None = None,
    ) -> CommunicationMatrix:
        """Synthetic 2-D 5-point stencil: each thread exchanges *weight*
        bytes per iteration with its grid neighbours (halo exchange).

        Threads are laid out row-major on a ``width``-wide grid
        (``ceil(sqrt(n))`` by default); the matrix is built with vectorized
        scatter so multi-thousand-thread instances cost milliseconds. This
        is the placement-scaling workload of the mapping benchmarks.
        """
        if n <= 0:
            raise MappingError(f"stencil order must be positive, got {n}")
        if weight < 0:
            raise MappingError(f"negative stencil weight {weight}")
        w = width if width is not None else int(np.ceil(np.sqrt(n)))
        if w <= 0:
            raise MappingError(f"stencil width must be positive, got {w}")
        m = np.zeros((n, n))
        idx = np.arange(n)
        x = idx % w
        right = idx + 1
        ok = (x + 1 < w) & (right < n)
        m[idx[ok], right[ok]] = weight
        m[right[ok], idx[ok]] = weight
        down = idx + w
        ok = down < n
        m[idx[ok], down[ok]] = weight
        m[down[ok], idx[ok]] = weight
        return cls(m)

    # -- views ----------------------------------------------------------------

    @property
    def order(self) -> int:
        return self._m.shape[0]

    @property
    def raw(self) -> np.ndarray:
        """The directed matrix (copy)."""
        return self._m.copy()

    def affinity(self) -> np.ndarray:
        """Symmetrized, zero-diagonal traffic — what TreeMatch groups on."""
        return zero_diagonal(symmetrize(self._m))

    def total_traffic(self) -> float:
        """Total off-diagonal traffic (both directions)."""
        return float(self.affinity().sum()) / 2.0

    def restricted(self, indices: Sequence[int]) -> CommunicationMatrix:
        """Sub-matrix over *indices* (new thread ids follow that order)."""
        idx = list(indices)
        return CommunicationMatrix(
            submatrix(self._m, idx), [self.labels[i] for i in idx]
        )

    def padded(self, new_order: int) -> CommunicationMatrix:
        """Zero-pad to *new_order* (dummy threads communicate nothing)."""
        if new_order < self.order:
            raise MappingError(
                f"cannot pad order {self.order} down to {new_order}"
            )
        m = np.zeros((new_order, new_order))
        m[: self.order, : self.order] = self._m
        labels = self.labels + [
            f"pad{i}" for i in range(new_order - self.order)
        ]
        return CommunicationMatrix(m, labels)

    # -- persistence -------------------------------------------------------------

    def to_csv(self) -> str:
        """Render as CSV with a label header row/column."""
        lines = ["," + ",".join(self.labels)]
        for i, label in enumerate(self.labels):
            lines.append(
                label + "," + ",".join(f"{v:g}" for v in self._m[i])
            )
        return "\n".join(lines)

    @classmethod
    def from_csv(cls, text: str) -> CommunicationMatrix:
        """Parse the :meth:`to_csv` format."""
        lines = [ln for ln in text.strip().splitlines() if ln.strip()]
        if not lines:
            raise MappingError("empty communication-matrix CSV")
        labels = lines[0].split(",")[1:]
        rows = []
        for ln in lines[1:]:
            cells = ln.split(",")
            rows.append([float(v) for v in cells[1:]])
        if len(rows) != len(labels):
            raise MappingError(
                f"CSV has {len(rows)} rows for {len(labels)} labels"
            )
        return cls(np.asarray(rows), labels)

    # -- quality metric ---------------------------------------------------------

    def placement_cost(
        self, placement: Mapping[int, int], hop_depth: Mapping[tuple[int, int], int]
    ) -> float:
        """Weighted communication distance of a placement.

        ``hop_depth[(pu_a, pu_b)]`` must give a *distance* (larger = farther)
        between the PUs; the cost is ``sum traffic(i,j) * distance`` — the
        objective TreeMatch minimizes.
        """
        aff = self.affinity()
        cost = 0.0
        for i in range(self.order):
            for j in range(i + 1, self.order):
                w = aff[i, j]
                if w and i in placement and j in placement:
                    cost += w * hop_depth[(placement[i], placement[j])]
        return cost

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CommunicationMatrix order={self.order} traffic={self.total_traffic():.3g}>"
