"""The communication matrix.

Entry ``[i, j]`` is the number of bytes thread *i* receives from (reads
that are produced by) thread *j* per iteration. TreeMatch works on the
symmetrized, zero-diagonal view: total traffic between the pair.

Two storage backends share one API:

* **dense** — a float64 ``numpy`` array, the historical default and the
  representation every small-instance code path uses;
* **sparse** — a ``scipy.sparse`` CSR array, selected explicitly with
  ``sparse=True`` or automatically by density when a matrix is built
  from edges (:meth:`from_edges`, :meth:`stencil2d`). A million-task
  stencil has ~4 entries per row; CSR keeps it at O(nnz) instead of an
  8 TB dense allocation.

When ``scipy`` is not installed the sparse backend degrades gracefully:
``sparse=True`` falls back to dense storage (callers that genuinely need
CSR check :data:`HAVE_SPARSE`).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.errors import MappingError
from repro.util.matrix import check_square, submatrix, symmetrize, zero_diagonal

try:  # pragma: no cover - exercised implicitly by every test run
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover - scipy is an optional dependency
    _sp = None

__all__ = ["CommunicationMatrix", "HAVE_SPARSE",
           "SPARSE_AUTO_ORDER", "SPARSE_AUTO_DENSITY"]

#: True when scipy.sparse is importable and the CSR backend is available.
HAVE_SPARSE = _sp is not None

#: Edge-built matrices of at least this order are candidates for the
#: automatic CSR backend selection ...
SPARSE_AUTO_ORDER = 4096
#: ... when their density (nnz / n^2) stays at or below this bound.
SPARSE_AUTO_DENSITY = 0.25


def _pick_sparse(flag: bool | None, n: int, nnz: int) -> bool:
    """Resolve the ``sparse`` constructor flag (None = auto by density)."""
    if flag is not None:
        return bool(flag) and HAVE_SPARSE
    if not HAVE_SPARSE:
        return False
    return n >= SPARSE_AUTO_ORDER and nnz <= SPARSE_AUTO_DENSITY * n * n


class _DefaultLabels(Sequence):
    """Lazy ``t{i}`` labels (with a ``pad{i}`` tail after padding).

    A million-task matrix must not materialize a million strings just to
    satisfy the label API; this sequence renders each name on demand.
    """

    __slots__ = ("_n", "_base")

    def __init__(self, n: int, base: int | None = None) -> None:
        self._n = n
        self._base = base  # labels >= base are pad labels

    def __len__(self) -> int:
        return self._n

    def _one(self, i: int) -> str:
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(i)
        if self._base is not None and i >= self._base:
            return f"pad{i - self._base}"
        return f"t{i}"

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self._one(j) for j in range(*i.indices(self._n))]
        return self._one(int(i))

    def __eq__(self, other) -> bool:
        if isinstance(other, _DefaultLabels):
            return self._n == other._n and self._base == other._base
        if isinstance(other, (list, tuple)):
            return len(other) == self._n and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover
        return f"<_DefaultLabels n={self._n} base={self._base}>"


def _check_csr(m, *, name: str = "matrix"):
    """CSR analogue of :func:`repro.util.matrix.check_square`."""
    csr = _sp.csr_array(m, dtype=np.float64)
    if csr.ndim != 2 or csr.shape[0] != csr.shape[1]:
        raise MappingError(f"{name} must be square 2-D, got shape {csr.shape}")
    if not np.isfinite(csr.data).all():
        raise MappingError(f"{name} contains non-finite entries")
    if csr.data.size and csr.data.min() < 0:
        raise MappingError(f"{name} contains negative entries")
    csr.sum_duplicates()
    csr.sort_indices()
    return csr


def _sym_zero_diag_csr(m):
    """CSR symmetrize + zero diagonal without inserting explicit zeros."""
    s = (m + m.T).tocoo()
    keep = s.row != s.col
    return _sp.csr_array(
        (s.data[keep], (s.row[keep], s.col[keep])), shape=s.shape
    )


class CommunicationMatrix:
    """An ``n × n`` thread-to-thread traffic matrix with optional labels."""

    def __init__(
        self,
        data,
        labels: Sequence[str] | None = None,
        *,
        sparse: bool | None = None,
    ) -> None:
        if HAVE_SPARSE and _sp.issparse(data):
            if sparse is False:
                self._m = check_square(data.toarray(),
                                       name="communication matrix")
            else:
                self._m = _check_csr(data, name="communication matrix")
        else:
            dense = check_square(np.asarray(data, dtype=np.float64),
                                 name="communication matrix")
            if sparse and HAVE_SPARSE:
                self._m = _check_csr(_sp.csr_array(dense),
                                     name="communication matrix")
            else:
                self._m = dense
        if labels is not None and len(labels) != self.order:
            raise MappingError(
                f"{len(labels)} labels for a matrix of order {self.order}"
            )
        self.labels: Sequence[str] = (
            list(labels) if labels is not None else _DefaultLabels(self.order)
        )

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Mapping[tuple[int, int], float],
        labels: Sequence[str] | None = None,
        *,
        sparse: bool | None = None,
    ) -> CommunicationMatrix:
        """Build from sparse ``{(receiver, producer): bytes}`` edges.

        The backend follows *sparse* (None = automatic: CSR for large,
        low-density instances when scipy is available). Construction is
        vectorized and — on the CSR path — never touches an O(n²) array.
        """
        if n < 0:
            raise MappingError(f"negative order {n}")
        k = len(edges)
        if k:
            rows = np.fromiter((e[0] for e in edges), dtype=np.int64, count=k)
            cols = np.fromiter((e[1] for e in edges), dtype=np.int64, count=k)
            vals = np.fromiter(edges.values(), dtype=np.float64, count=k)
        else:
            rows = cols = np.zeros(0, dtype=np.int64)
            vals = np.zeros(0, dtype=np.float64)
        bad = (rows < 0) | (rows >= n) | (cols < 0) | (cols >= n)
        if bad.any():
            b = int(np.flatnonzero(bad)[0])
            raise MappingError(
                f"edge ({rows[b]}, {cols[b]}) outside order {n}"
            )
        neg = vals < 0
        if neg.any():
            b = int(np.flatnonzero(neg)[0])
            raise MappingError(
                f"negative traffic on edge ({rows[b]}, {cols[b]})"
            )
        if _pick_sparse(sparse, n, k):
            csr = _sp.csr_array(
                _sp.coo_array((vals, (rows, cols)), shape=(n, n))
            )
            return cls(csr, labels)
        m = np.zeros((n, n))
        np.add.at(m, (rows, cols), vals)
        return cls(m, labels)

    @classmethod
    def stencil2d(
        cls,
        n: int,
        *,
        weight: float = 100.0,
        width: int | None = None,
        sparse: bool | None = None,
    ) -> CommunicationMatrix:
        """Synthetic 2-D 5-point stencil: each thread exchanges *weight*
        bytes per iteration with its grid neighbours (halo exchange).

        Threads are laid out row-major on a ``width``-wide grid
        (``ceil(sqrt(n))`` by default). The matrix is built with
        vectorized scatter; with the CSR backend (*sparse* = True, or
        automatic for large instances) a million-task stencil costs
        O(n) memory instead of O(n²). This is the placement-scaling
        workload of the mapping benchmarks.
        """
        if n <= 0:
            raise MappingError(f"stencil order must be positive, got {n}")
        if weight < 0:
            raise MappingError(f"negative stencil weight {weight}")
        w = width if width is not None else int(np.ceil(np.sqrt(n)))
        if w <= 0:
            raise MappingError(f"stencil width must be positive, got {w}")
        idx = np.arange(n)
        x = idx % w
        right = idx + 1
        ok_r = (x + 1 < w) & (right < n)
        down = idx + w
        ok_d = down < n
        src_r, dst_r = idx[ok_r], right[ok_r]
        src_d, dst_d = idx[ok_d], down[ok_d]
        nnz = 2 * (src_r.size + src_d.size)
        if _pick_sparse(sparse, n, nnz):
            rows = np.concatenate([src_r, dst_r, src_d, dst_d])
            cols = np.concatenate([dst_r, src_r, dst_d, src_d])
            vals = np.full(rows.size, float(weight))
            csr = _sp.csr_array(
                _sp.coo_array((vals, (rows, cols)), shape=(n, n))
            )
            return cls(csr)
        m = np.zeros((n, n))
        m[src_r, dst_r] = weight
        m[dst_r, src_r] = weight
        m[src_d, dst_d] = weight
        m[dst_d, src_d] = weight
        return cls(m)

    # -- views ----------------------------------------------------------------

    @property
    def order(self) -> int:
        return self._m.shape[0]

    @property
    def is_sparse(self) -> bool:
        """True when the CSR backend holds this matrix."""
        return HAVE_SPARSE and _sp.issparse(self._m)

    @property
    def nnz(self) -> int:
        """Stored entry count (dense matrices count their nonzeros)."""
        if self.is_sparse:
            return int(self._m.nnz)
        return int(np.count_nonzero(self._m))

    @property
    def raw(self) -> np.ndarray:
        """The directed matrix as a dense array (copy; densifies CSR)."""
        if self.is_sparse:
            return self._m.toarray()
        return self._m.copy()

    def tocsr(self):
        """The directed matrix as a ``scipy.sparse`` CSR array (copy).

        Raises :class:`MappingError` when scipy is unavailable.
        """
        if not HAVE_SPARSE:
            raise MappingError("scipy is not installed; no CSR view")
        if self.is_sparse:
            return self._m.copy()
        return _sp.csr_array(self._m)

    def affinity(self) -> np.ndarray:
        """Symmetrized, zero-diagonal traffic — what TreeMatch groups on.

        Always dense; use :meth:`affinity_sparse` for the CSR view when
        the instance is too large to densify.
        """
        if self.is_sparse:
            return _sym_zero_diag_csr(self._m).toarray()
        return zero_diagonal(symmetrize(self._m))

    def affinity_sparse(self):
        """The affinity view as a CSR array (requires scipy)."""
        if not HAVE_SPARSE:
            raise MappingError("scipy is not installed; no CSR affinity")
        if self.is_sparse:
            return _sym_zero_diag_csr(self._m)
        return _sp.csr_array(zero_diagonal(symmetrize(self._m)))

    def affinity_any(self):
        """Affinity in the native backend: CSR when sparse, else dense.

        The multilevel engines consume this — they accept either form
        and must never force a densification of a large CSR instance.
        """
        if self.is_sparse:
            return _sym_zero_diag_csr(self._m)
        return zero_diagonal(symmetrize(self._m))

    def total_traffic(self) -> float:
        """Total off-diagonal traffic (both directions)."""
        if self.is_sparse:
            return float(_sym_zero_diag_csr(self._m).data.sum()) / 2.0
        return float(self.affinity().sum()) / 2.0

    def restricted(self, indices: Sequence[int]) -> CommunicationMatrix:
        """Sub-matrix over *indices* (new thread ids follow that order)."""
        idx = list(indices)
        labels = [self.labels[i] for i in idx]
        if self.is_sparse:
            ia = np.asarray(idx, dtype=np.intp)
            return CommunicationMatrix(self._m[ia][:, ia], labels)
        return CommunicationMatrix(submatrix(self._m, idx), labels)

    def padded(self, new_order: int) -> CommunicationMatrix:
        """Zero-pad to *new_order* (dummy threads communicate nothing)."""
        if new_order < self.order:
            raise MappingError(
                f"cannot pad order {self.order} down to {new_order}"
            )
        if isinstance(self.labels, _DefaultLabels):
            labels: Sequence[str] = _DefaultLabels(new_order, base=self.order)
        else:
            labels = list(self.labels) + [
                f"pad{i}" for i in range(new_order - self.order)
            ]
        if self.is_sparse:
            csr = self._m
            indptr = np.concatenate([
                csr.indptr,
                np.full(new_order - self.order, csr.indptr[-1],
                        dtype=csr.indptr.dtype),
            ])
            padded = _sp.csr_array(
                (csr.data.copy(), csr.indices.copy(), indptr),
                shape=(new_order, new_order),
            )
            out = CommunicationMatrix(padded)
        else:
            m = np.zeros((new_order, new_order))
            m[: self.order, : self.order] = self._m
            out = CommunicationMatrix(m)
        out.labels = labels
        return out

    # -- persistence -------------------------------------------------------------

    def to_csv(self) -> str:
        """Render as CSV with a label header row/column (densifies)."""
        lines = ["," + ",".join(self.labels)]
        dense = self.raw
        for i, label in enumerate(self.labels):
            lines.append(
                label + "," + ",".join(f"{v:g}" for v in dense[i])
            )
        return "\n".join(lines)

    @classmethod
    def from_csv(cls, text: str) -> CommunicationMatrix:
        """Parse the :meth:`to_csv` format."""
        lines = [ln for ln in text.strip().splitlines() if ln.strip()]
        if not lines:
            raise MappingError("empty communication-matrix CSV")
        labels = lines[0].split(",")[1:]
        rows = []
        for ln in lines[1:]:
            cells = ln.split(",")
            rows.append([float(v) for v in cells[1:]])
        if len(rows) != len(labels):
            raise MappingError(
                f"CSV has {len(rows)} rows for {len(labels)} labels"
            )
        return cls(np.asarray(rows), labels)

    # -- quality metric ---------------------------------------------------------

    def placement_cost(
        self, placement: Mapping[int, int], hop_depth: Mapping[tuple[int, int], int]
    ) -> float:
        """Weighted communication distance of a placement.

        ``hop_depth[(pu_a, pu_b)]`` must give a *distance* (larger = farther)
        between the PUs; the cost is ``sum traffic(i,j) * distance`` — the
        objective TreeMatch minimizes.

        Both backends accumulate the nonzero upper-triangle terms in
        row-major order, so CSR and dense agree bit-for-bit.
        """
        cost = 0.0
        if self.is_sparse:
            coo = self.affinity_sparse().tocoo()
            for i, j, w in zip(coo.row.tolist(), coo.col.tolist(),
                               coo.data.tolist()):
                if i < j and w and i in placement and j in placement:
                    cost += w * hop_depth[(placement[i], placement[j])]
            return cost
        aff = self.affinity()
        for i in range(self.order):
            for j in range(i + 1, self.order):
                w = aff[i, j]
                if w and i in placement and j in placement:
                    cost += w * hop_depth[(placement[i], placement[j])]
        return cost

    def __repr__(self) -> str:  # pragma: no cover
        kind = "sparse" if self.is_sparse else "dense"
        return (
            f"<CommunicationMatrix order={self.order} {kind} "
            f"traffic={self.total_traffic():.3g}>"
        )
