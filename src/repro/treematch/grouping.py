"""``GroupProcesses`` — partition threads into equal-size affinity groups.

Given the current (symmetric) affinity matrix of order ``p`` and a group
size ``a`` (the arity of the topology level being processed), produce
``k = p / a`` disjoint groups maximizing intra-group traffic. As in the
paper, the engine "goes from an optimal but exponential algorithm to a
greedy one that is linear" depending on the problem size; a local-search
refinement pass closes most of the gap for mid-size problems.
"""

from __future__ import annotations

from math import comb

import numpy as np

from repro.errors import MappingError
from repro.util.matrix import check_square

__all__ = [
    "group_processes",
    "group_optimal",
    "group_greedy",
    "refine_groups",
    "partition_count",
    "intra_group_weight",
]

#: Exhaustive search is used when the number of candidate partitions is
#: below this bound (compare `partition_count`).
OPTIMAL_SEARCH_LIMIT = 20_000


def partition_count(p: int, a: int) -> int:
    """Number of distinct partitions of ``p`` items into groups of size ``a``.

    Counted canonically (lowest unassigned element anchors each group):
    ``prod_i C(p - i*a - 1, a - 1)``.
    """
    if p % a:
        raise MappingError(f"cannot split {p} processes into groups of {a}")
    count = 1
    remaining = p
    while remaining > 0:
        count *= comb(remaining - 1, a - 1)
        remaining -= a
    return count


def intra_group_weight(m: np.ndarray, groups: list[list[int]]) -> float:
    """Total affinity kept inside groups (the maximization objective)."""
    total = 0.0
    for g in groups:
        for x, i in enumerate(g):
            for j in g[x + 1 :]:
                total += m[i, j]
    return float(total)


def group_processes(
    m: np.ndarray,
    arity: int,
    *,
    force: str | None = None,
    refine: bool = True,
) -> list[list[int]]:
    """Partition the ``order(m)`` processes into groups of size *arity*.

    *force* pins the engine (``"optimal"`` or ``"greedy"``); by default the
    exhaustive engine is used whenever :func:`partition_count` stays under
    ``OPTIMAL_SEARCH_LIMIT``. Groups and their members are returned in a
    canonical order (each group led by its smallest member, groups sorted
    by leader) so results are deterministic.
    """
    a = check_square(m, name="affinity matrix")
    p = a.shape[0]
    if arity <= 0:
        raise MappingError(f"arity must be positive, got {arity}")
    if p % arity:
        raise MappingError(f"{p} processes are not divisible into groups of {arity}")
    if arity == 1:
        return [[i] for i in range(p)]
    if arity == p:
        return [list(range(p))]

    if force == "optimal":
        groups = group_optimal(a, arity)
    elif force == "greedy":
        groups = group_greedy(a, arity)
        if refine:
            groups = refine_groups(a, groups)
    elif force is None:
        if partition_count(p, arity) <= OPTIMAL_SEARCH_LIMIT:
            groups = group_optimal(a, arity)
        else:
            groups = group_greedy(a, arity)
            if refine:
                groups = refine_groups(a, groups)
    else:
        raise MappingError(f"unknown grouping engine {force!r}")
    return _canonical(groups)


def _canonical(groups: list[list[int]]) -> list[list[int]]:
    out = [sorted(g) for g in groups]
    out.sort(key=lambda g: g[0])
    return out


# -- exhaustive engine ---------------------------------------------------------


def group_optimal(m: np.ndarray, arity: int) -> list[list[int]]:
    """Exhaustive canonical enumeration; maximizes intra-group weight.

    Exponential — guarded by ``OPTIMAL_SEARCH_LIMIT`` in
    :func:`group_processes`, but callable directly for tests.
    """
    p = m.shape[0]
    best_groups: list[list[int]] | None = None
    best_weight = -1.0

    def recurse(unassigned: list[int], acc: list[list[int]], weight: float) -> None:
        nonlocal best_groups, best_weight
        if not unassigned:
            if weight > best_weight:
                best_weight = weight
                best_groups = [list(g) for g in acc]
            return
        anchor = unassigned[0]
        rest = unassigned[1:]
        for combo in _combinations(rest, arity - 1):
            group = [anchor, *combo]
            w = weight
            for x, i in enumerate(group):
                for j in group[x + 1 :]:
                    w += m[i, j]
            remaining = [u for u in rest if u not in combo]
            acc.append(group)
            recurse(remaining, acc, w)
            acc.pop()

    recurse(list(range(p)), [], 0.0)
    assert best_groups is not None
    return best_groups


def _combinations(items: list[int], r: int):
    # itertools.combinations, local to avoid set-lookup overhead patterns
    from itertools import combinations

    return combinations(items, r)


# -- greedy engine ---------------------------------------------------------------


def group_greedy(m: np.ndarray, arity: int) -> list[list[int]]:
    """Greedy grouping: seed each group with the heaviest unassigned pair,
    then grow it with the element most attracted to the group.

    Vectorized with a masked copy of the matrix so each seed/grow decision
    is a single argmax — near-linear in practice.
    """
    p = m.shape[0]
    work = np.array(m, dtype=np.float64)
    np.fill_diagonal(work, -np.inf)
    free = np.ones(p, dtype=bool)
    groups: list[list[int]] = []

    def retire(i: int) -> None:
        free[i] = False
        work[i, :] = -np.inf
        work[:, i] = -np.inf

    while free.any():
        remaining = int(free.sum())
        if remaining == arity:
            groups.append([int(i) for i in np.flatnonzero(free)])
            break
        if arity == 1:
            i = int(np.flatnonzero(free)[0])
            retire(i)
            groups.append([i])
            continue
        flat = int(np.argmax(work))
        seed_i, seed_j = divmod(flat, p)
        group = [seed_i, seed_j]
        retire(seed_i)
        retire(seed_j)
        while len(group) < arity:
            # Attraction of every free element to the group; mask others out.
            attract = m[:, group].sum(axis=1)
            attract[~free] = -np.inf
            best = int(np.argmax(attract))
            retire(best)
            group.append(best)
        groups.append(group)
    return groups


# -- refinement -------------------------------------------------------------------


def refine_groups(
    m: np.ndarray, groups: list[list[int]], *, max_rounds: int = 4
) -> list[list[int]]:
    """Pairwise-swap local search: keep exchanging elements between groups
    while any swap increases total intra-group weight."""
    groups = [list(g) for g in groups]

    def gain(ga: list[int], gb: list[int], i: int, j: int) -> float:
        # Move i: ga -> gb and j: gb -> ga.
        before = sum(m[i, x] for x in ga if x != i) + sum(m[j, x] for x in gb if x != j)
        after = sum(m[i, x] for x in gb if x != j) + sum(m[j, x] for x in ga if x != i)
        return after - before

    for _ in range(max_rounds):
        improved = False
        for ai in range(len(groups)):
            for bi in range(ai + 1, len(groups)):
                ga, gb = groups[ai], groups[bi]
                for xi in range(len(ga)):
                    for yi in range(len(gb)):
                        g = gain(ga, gb, ga[xi], gb[yi])
                        if g > 1e-12:
                            ga[xi], gb[yi] = gb[yi], ga[xi]
                            improved = True
        if not improved:
            break
    return groups
