"""``GroupProcesses`` — partition threads into equal-size affinity groups.

Given the current (symmetric) affinity matrix of order ``p`` and a group
size ``a`` (the arity of the topology level being processed), produce
``k = p / a`` disjoint groups maximizing intra-group traffic. As in the
paper, the engine "goes from an optimal but exponential algorithm to a
greedy one that is linear" depending on the problem size; a local-search
refinement pass closes most of the gap for mid-size problems.

Scalability notes (ISSUE 3): the exact engine prunes its enumeration
with a sorted-edge upper bound (branch-and-bound), the greedy engine
keeps lazy row maxima instead of rescanning the matrix, and the
refinement pass is a delta-gain local search driven by a precomputed
element-to-group attraction matrix — all three stay usable at
``p ≈ 4096`` (see the ``mapping_bench`` entries of ``BENCH_sim.json``).
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.errors import MappingError
from repro.util.matrix import check_square

__all__ = [
    "group_processes",
    "group_optimal",
    "group_greedy",
    "refine_groups",
    "partition_count",
    "partition_count_exceeds",
    "intra_group_weight",
]

#: Exhaustive search is used when the number of candidate partitions is
#: below this bound (compare `partition_count`). Raised 10x over the
#: original pure-enumeration limit: the branch-and-bound bound prunes
#: most of the canonical tree, so the exact engine now covers more of
#: the small-p space within the same time budget.
OPTIMAL_SEARCH_LIMIT = 200_000


def partition_count(p: int, a: int) -> int:
    """Number of distinct partitions of ``p`` items into groups of size ``a``.

    Counted canonically (lowest unassigned element anchors each group):
    ``prod_i C(p - i*a - 1, a - 1)``.
    """
    if p % a:
        raise MappingError(f"cannot split {p} processes into groups of {a}")
    count = 1
    remaining = p
    while remaining > 0:
        count *= comb(remaining - 1, a - 1)
        remaining -= a
    return count


def partition_count_exceeds(p: int, a: int, limit: int) -> bool:
    """True when :func:`partition_count` would exceed *limit*.

    Stops multiplying as soon as the running product passes *limit* —
    for large ``p`` the full count is a huge exact integer whose only use
    here is a one-sided comparison, so most of the arithmetic is wasted.
    """
    if p % a:
        raise MappingError(f"cannot split {p} processes into groups of {a}")
    count = 1
    remaining = p
    while remaining > 0:
        count *= comb(remaining - 1, a - 1)
        if count > limit:
            return True
        remaining -= a
    return count > limit


def intra_group_weight(m: np.ndarray, groups: list[list[int]]) -> float:
    """Total affinity kept inside groups (the maximization objective).

    *m* is assumed symmetric (the TreeMatch affinity view); each group's
    contribution is half its off-diagonal submatrix sum.
    """
    m = np.asarray(m, dtype=np.float64)
    total = 0.0
    for g in groups:
        idx = np.asarray(g, dtype=np.intp)
        sub = m[np.ix_(idx, idx)]
        total += (sub.sum() - np.trace(sub)) / 2.0
    return float(total)


def group_processes(
    m: np.ndarray,
    arity: int,
    *,
    force: str | None = None,
    refine: bool = True,
    stats: dict | None = None,
) -> list[list[int]]:
    """Partition the ``order(m)`` processes into groups of size *arity*.

    *force* pins the engine (``"optimal"`` or ``"greedy"``); by default the
    exhaustive engine is used whenever :func:`partition_count` stays under
    ``OPTIMAL_SEARCH_LIMIT``. Groups and their members are returned in a
    canonical order (each group led by its smallest member, groups sorted
    by leader) so results are deterministic. *stats* is forwarded to
    :func:`refine_groups` when the refinement pass runs.
    """
    a = check_square(m, name="affinity matrix")
    p = a.shape[0]
    if arity <= 0:
        raise MappingError(f"arity must be positive, got {arity}")
    if p % arity:
        raise MappingError(f"{p} processes are not divisible into groups of {arity}")
    if arity == 1:
        return [[i] for i in range(p)]
    if arity == p:
        return [list(range(p))]

    if force == "optimal":
        groups = group_optimal(a, arity)
    elif force == "greedy":
        groups = group_greedy(a, arity)
        if refine:
            groups = refine_groups(a, groups, stats=stats)
    elif force is None:
        if not partition_count_exceeds(p, arity, OPTIMAL_SEARCH_LIMIT):
            groups = group_optimal(a, arity)
        else:
            groups = group_greedy(a, arity)
            if refine:
                groups = refine_groups(a, groups, stats=stats)
    else:
        raise MappingError(f"unknown grouping engine {force!r}")
    return _canonical(groups)


def _canonical(groups: list[list[int]]) -> list[list[int]]:
    out = [sorted(g) for g in groups]
    out.sort(key=lambda g: g[0])
    return out


# -- exhaustive engine ---------------------------------------------------------


def group_optimal(m: np.ndarray, arity: int) -> list[list[int]]:
    """Exact canonical enumeration with branch-and-bound pruning.

    The bound: an element can never gain more than the sum of its
    ``arity - 1`` heaviest incident edges inside any future group, and
    summing that over the unassigned remainder counts every candidate
    pair at most twice — so half that sum bounds the achievable weight of
    any completion. Subtrees whose bound cannot beat the incumbent are
    skipped, which keeps the engine usable well past the old enumeration
    limit while returning exactly the enumeration's result. Guarded by
    ``OPTIMAL_SEARCH_LIMIT`` in :func:`group_processes`, but callable
    directly for tests.
    """
    p = m.shape[0]
    sorted_rows = np.sort(m, axis=1)[:, ::-1]
    top_gain = sorted_rows[:, : arity - 1].sum(axis=1)

    best_groups: list[list[int]] | None = None
    best_weight = -1.0

    def recurse(
        unassigned: list[int],
        acc: list[list[int]],
        weight: float,
        rem_bound: float,
    ) -> None:
        nonlocal best_groups, best_weight
        if not unassigned:
            if weight > best_weight:
                best_weight = weight
                best_groups = [list(g) for g in acc]
            return
        if weight + 0.5 * rem_bound <= best_weight:
            return
        anchor = unassigned[0]
        rest = unassigned[1:]
        anchor_bound = top_gain[anchor]
        for combo in combinations(rest, arity - 1):
            group = [anchor, *combo]
            w = weight
            for x, i in enumerate(group):
                for j in group[x + 1 :]:
                    w += m[i, j]
            child_bound = rem_bound - anchor_bound - sum(
                top_gain[c] for c in combo
            )
            if w + 0.5 * child_bound <= best_weight:
                continue
            combo_set = set(combo)
            remaining = [u for u in rest if u not in combo_set]
            acc.append(group)
            recurse(remaining, acc, w, child_bound)
            acc.pop()

    recurse(list(range(p)), [], 0.0, float(top_gain.sum()))
    assert best_groups is not None
    return best_groups


# -- greedy engine ---------------------------------------------------------------


def group_greedy(m: np.ndarray, arity: int) -> list[list[int]]:
    """Greedy grouping: seed each group with the heaviest unassigned pair,
    then grow it with the element most attracted to the group.

    Seed selection keeps lazy per-row maxima (refreshed only when a row's
    witness column is retired) instead of rescanning the p x p matrix, and
    each grow step updates the group-attraction vector incrementally — so
    the engine stays near-linear even at thousands of threads.
    """
    p = m.shape[0]
    if arity == 1:
        return [[i] for i in range(p)]
    # Retired vertices are masked by an additive -inf penalty vector
    # instead of per-step ``np.where`` temporaries: retiring is O(1),
    # and each grow step is two in-place vector adds plus one C-level
    # argmax into preallocated buffers — no allocation, no strided
    # writes, identical selections (ties resolve on the same values).
    work = np.array(m, dtype=np.float64)
    np.fill_diagonal(work, -np.inf)
    free = np.ones(p, dtype=bool)
    n_free = p
    mask = np.zeros(p)
    cand = np.empty(p)
    attract = np.empty(p)
    row_max = work.max(axis=1)
    row_arg = work.argmax(axis=1)
    groups: list[list[int]] = []

    def retire(i: int) -> None:
        nonlocal n_free
        free[i] = False
        n_free -= 1
        row_max[i] = -np.inf
        mask[i] = -np.inf

    def heaviest_pair() -> tuple[int, int]:
        while True:
            i = int(row_max.argmax())
            j = int(row_arg[i])
            if free[j]:
                return i, j
            # Stale witness: recompute this row's maximum over free
            # columns (the mask sends retired ones to -inf).
            np.add(work[i], mask, out=cand)
            row_max[i] = cand.max()
            row_arg[i] = cand.argmax()

    while n_free:
        if n_free == arity:
            groups.append([int(i) for i in np.flatnonzero(free)])  # hotlint: ok(alloc)
            break
        seed_i, seed_j = heaviest_pair()
        group = [seed_i, seed_j]
        np.add(work[seed_i], work[seed_j], out=attract)
        retire(seed_i)
        retire(seed_j)
        while len(group) < arity:
            np.add(attract, mask, out=cand)
            best = int(cand.argmax())
            retire(best)
            group.append(best)
            attract += work[best]
        groups.append(group)
    return groups


# -- refinement -------------------------------------------------------------------

#: Row-block size for the vectorized gain evaluation; bounds the size of
#: the temporary gain blocks to block x p.
_REFINE_BLOCK = 512


def refine_groups(
    m: np.ndarray,
    groups: list[list[int]],
    *,
    max_rounds: int = 4,
    stats: dict | None = None,
) -> list[list[int]]:
    """Pairwise-swap local search: exchange elements between groups while
    any swap increases total intra-group weight.

    Delta-gain formulation: with ``A[i, g]`` the attraction of element
    *i* to group *g* (one matrix product to build, updated incrementally
    after each applied swap), the gain of exchanging *i* and *j* is
    ``A[i, gj] + A[j, gi] - A[i, gi] - A[j, gj] - 2 m[i, j]``. Each sweep
    evaluates every cross-group pair vectorized (in row blocks), then
    applies the best non-conflicting swaps in descending-gain order,
    re-checking each candidate's exact gain against the current state so
    the objective never decreases. Sweeps repeat until none improves
    (bounded by ``8 * max_rounds`` as a safety stop).

    Only the listed members move; elements of *m* outside *groups* are
    untouched (the search then runs on the member submatrix).

    *stats*, when given, accumulates ``"sweeps"`` (gain-evaluation
    rounds run, including the final no-improvement one) and ``"swaps"``
    (exchanges applied) across calls — how warm-start convergence is
    counted rather than timed.
    """
    groups = [list(g) for g in groups]
    k = len(groups)
    if k < 2:
        return groups
    m = np.asarray(m, dtype=np.float64)
    p = m.shape[0]
    members = [i for g in groups for i in g]
    n = len(members)
    if n == p and sorted(members) == list(range(p)):
        sub = m
        local_of: np.ndarray | None = None
        asg = np.empty(n, dtype=np.intp)
        for gi, g in enumerate(groups):
            asg[np.asarray(g, dtype=np.intp)] = gi
    else:
        local_of = np.asarray(members, dtype=np.intp)
        sub = m[np.ix_(local_of, local_of)]
        asg = np.empty(n, dtype=np.intp)
        pos = 0
        for gi, g in enumerate(groups):
            asg[pos : pos + len(g)] = gi
            pos += len(g)

    indicator = np.zeros((n, k))
    indicator[np.arange(n), asg] = 1.0
    attraction = sub @ indicator

    rows = np.arange(n)
    sweeps = 0
    swaps = 0
    for _ in range(max(8 * max_rounds, 16)):
        sweeps += 1
        own = attraction[rows, asg]
        delta = attraction - own[:, None]
        best_gain = np.full(n, -np.inf)
        best_j = np.zeros(n, dtype=np.intp)
        for start in range(0, n, _REFINE_BLOCK):
            stop = min(start + _REFINE_BLOCK, n)
            blk = slice(start, stop)
            gain_blk = (
                delta[blk][:, asg] + delta[:, asg[blk]].T - 2.0 * sub[blk]
            )
            gain_blk[asg[blk, None] == asg[None, :]] = -np.inf
            arg = gain_blk.argmax(axis=1)
            best_j[blk] = arg
            best_gain[blk] = gain_blk[np.arange(stop - start), arg]

        order = np.argsort(-best_gain, kind="stable")
        touched = np.zeros(n, dtype=bool)
        improved = False
        for i in order:
            if best_gain[i] <= 1e-12:
                break
            i = int(i)
            j = int(best_j[i])
            if touched[i] or touched[j]:
                continue
            gi, gj = int(asg[i]), int(asg[j])
            if gi == gj:
                continue
            gain = (
                attraction[i, gj]
                + attraction[j, gi]
                - attraction[i, gi]
                - attraction[j, gj]
                - 2.0 * sub[i, j]
            )
            if gain <= 1e-12:
                continue
            attraction[:, gi] += sub[:, j] - sub[:, i]
            attraction[:, gj] += sub[:, i] - sub[:, j]
            asg[i], asg[j] = gj, gi
            touched[i] = touched[j] = True
            swaps += 1
            improved = True
        if not improved:
            break

    if stats is not None:
        stats["sweeps"] = stats.get("sweeps", 0) + sweeps
        stats["swaps"] = stats.get("swaps", 0) + swaps

    out: list[list[int]] = []
    for gi in range(k):
        local = np.flatnonzero(asg == gi)
        if local_of is None:
            out.append([int(x) for x in local])
        else:
            out.append([int(local_of[x]) for x in local])
    return out
