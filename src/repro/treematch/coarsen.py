"""Multilevel coarsening: heavy-edge matching over CSR affinity graphs.

The scalable mapping path (ISSUE 7 / *Shared-Memory Hierarchical Process
Mapping*, Schulz & Woydt) never runs a grouping engine on the full
million-task matrix. Instead it collapses the affinity graph level by
level — each level merges matched pairs of heavily-communicating
vertices into one coarse vertex — until the graph is small enough to
partition with the dense engines, then projects the partition back up.

Everything here works on a plain CSR triple ``(indptr, indices, data)``
so the module needs no scipy: a dense array or a ``scipy.sparse`` matrix
is converted on entry (:func:`csr_parts`). Matrices are assumed to be
symmetric zero-diagonal affinity views (what
``CommunicationMatrix.affinity_any`` returns).

Matching is the classic sorted-edge greedy: visit undirected edges by
descending weight (ties broken by endpoint indices, so results are
deterministic), match both endpoints when still free. Unmatched vertices
— isolated threads, or leftovers of odd components — carry over as
singletons. Coarse vertex ids are canonical: numbered by each merged
pair's smallest fine index, independent of match discovery order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError

try:  # pragma: no cover - optional dependency
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover
    _sp = None

__all__ = [
    "CoarseLevel",
    "csr_parts",
    "parts_to_dense",
    "take_submatrix",
    "heavy_edge_matching",
    "coarsen_matrix",
    "coarsen",
]


@dataclass
class CoarseLevel:
    """One level of the coarsening hierarchy (finest first).

    ``coarse_of[v]`` is the vertex of the *next* (coarser) level that
    fine vertex ``v`` merged into — ``None`` on the coarsest level.
    ``weights[v]`` counts the original (finest-level) tasks collapsed
    into ``v``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    n: int
    weights: np.ndarray
    coarse_of: np.ndarray | None = None


def csr_parts(matrix) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """``(indptr, indices, data, n)`` of a dense array or sparse matrix.

    Rows are returned with sorted column indices; the input is not
    modified.
    """
    if _sp is not None and _sp.issparse(matrix):
        csr = _sp.csr_array(matrix)
        csr.sum_duplicates()
        csr.sort_indices()
        return (
            np.asarray(csr.indptr, dtype=np.int64),
            np.asarray(csr.indices, dtype=np.int64),
            np.asarray(csr.data, dtype=np.float64),
            csr.shape[0],
        )
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise MappingError(f"affinity matrix must be square, got {m.shape}")
    rows, cols = np.nonzero(m)
    counts = np.bincount(rows, minlength=m.shape[0])
    indptr = np.zeros(m.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, cols.astype(np.int64), m[rows, cols], m.shape[0]


def parts_to_dense(
    indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, n: int
) -> np.ndarray:
    """Densify a CSR triple (for the small coarse levels only)."""
    out = np.zeros((n, n))
    rows = np.repeat(np.arange(n), np.diff(indptr))
    out[rows, indices] = data
    return out


def take_submatrix(matrix, idx: np.ndarray):
    """Rows+columns of *matrix* restricted to *idx*, same backend."""
    ia = np.asarray(idx, dtype=np.intp)
    if _sp is not None and _sp.issparse(matrix):
        return matrix[ia][:, ia]
    return matrix[np.ix_(ia, ia)]


def heavy_edge_matching(
    indptr: np.ndarray, indices: np.ndarray, data: np.ndarray, n: int
) -> tuple[np.ndarray, int]:
    """Greedy matching by descending edge weight.

    Returns ``(coarse_of, n_coarse)``: a fine→coarse vertex map and the
    coarse vertex count. Deterministic: edges are visited in
    ``(-weight, i, j)`` order and coarse ids follow the smallest fine
    index of each merged pair.
    """
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    upper = indices > rows
    er = rows[upper]
    ec = indices[upper]
    ew = data[upper]
    order = np.lexsort((ec, er, -ew))
    # The match loop is the hot O(|E|) core of every coarsening level —
    # plain-list indexing, no per-edge allocations (see hotlint).
    ei = er[order].tolist()
    ej = ec[order].tolist()
    partner = [-1] * n
    taken = bytearray(n)
    e = len(ei)
    k = 0
    while k < e:
        i = ei[k]
        j = ej[k]
        k += 1
        if taken[i] or taken[j]:
            continue
        taken[i] = 1
        taken[j] = 1
        partner[i] = j
        partner[j] = i
    part = np.asarray(partner, dtype=np.int64)
    own = np.arange(n, dtype=np.int64)
    rep = np.where(part >= 0, np.minimum(own, part), own)
    uniq, coarse_of = np.unique(rep, return_inverse=True)
    return coarse_of.astype(np.intp), int(uniq.size)


def coarsen_matrix(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    n: int,
    coarse_of: np.ndarray,
    n_coarse: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse a CSR affinity onto the coarse vertices.

    Edge weights between distinct coarse vertices accumulate; intra-pair
    (diagonal) weight is dropped, keeping the zero-diagonal invariant.
    Output rows are canonical (sorted, duplicate-free).
    """
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    nr = coarse_of[rows]
    nc = coarse_of[indices]
    keep = nr != nc
    keys = nr[keep] * np.int64(n_coarse) + nc[keep]
    uniq, inv = np.unique(keys, return_inverse=True)
    sums = np.bincount(inv, weights=data[keep], minlength=uniq.size)
    rows2 = (uniq // n_coarse).astype(np.int64)
    cols2 = (uniq % n_coarse).astype(np.int64)
    counts = np.bincount(rows2, minlength=n_coarse)
    indptr2 = np.zeros(n_coarse + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr2[1:])
    return indptr2, cols2, sums.astype(np.float64)


def coarsen(
    matrix,
    *,
    target: int,
    max_levels: int = 64,
    min_shrink: float = 0.95,
) -> list[CoarseLevel]:
    """Build the coarsening hierarchy of *matrix* down to ~*target* vertices.

    Stops when the level order reaches *target*, when a matching fails
    to shrink the graph below ``min_shrink`` of its size (edge-free
    graphs stall immediately), or after *max_levels*. Returns the levels
    finest-first; the caller partitions the last one and projects back
    through ``coarse_of``.
    """
    if target < 1:
        raise MappingError(f"coarsening target must be >= 1, got {target}")
    indptr, indices, data, n = csr_parts(matrix)
    levels = [CoarseLevel(indptr, indices, data, n,
                          np.ones(n, dtype=np.int64))]
    while levels[-1].n > target and len(levels) < max_levels:
        cur = levels[-1]
        coarse_of, n_c = heavy_edge_matching(
            cur.indptr, cur.indices, cur.data, cur.n
        )
        if n_c >= cur.n * min_shrink:
            break
        indptr2, indices2, data2 = coarsen_matrix(
            cur.indptr, cur.indices, cur.data, cur.n, coarse_of, n_c
        )
        cur.coarse_of = coarse_of
        weights2 = np.bincount(
            coarse_of, weights=cur.weights, minlength=n_c
        ).astype(np.int64)
        levels.append(CoarseLevel(indptr2, indices2, data2, n_c, weights2))
    return levels
