"""``AggregateComMatrix`` — collapse an affinity matrix onto groups.

After grouping at a tree level, the next level up sees each group as one
entity; the aggregated matrix entry ``[gi, gj]`` is the total affinity
between the members of group *gi* and group *gj*.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.util.matrix import check_square

__all__ = ["aggregate_comm_matrix"]


def aggregate_comm_matrix(m: np.ndarray, groups: list[list[int]]) -> np.ndarray:
    """Aggregate *m* over *groups*; returns a ``k × k`` matrix.

    Every process index must appear in exactly one group.
    """
    a = check_square(m, name="affinity matrix")
    p = a.shape[0]
    seen: set[int] = set()
    for g in groups:
        for i in g:
            if not 0 <= i < p:
                raise MappingError(f"group member {i} outside order {p}")
            if i in seen:
                raise MappingError(f"process {i} appears in two groups")
            seen.add(i)
    if len(seen) != p:
        raise MappingError(
            f"groups cover {len(seen)} of {p} processes"
        )

    k = len(groups)
    out = np.zeros((k, k))
    for gi in range(k):
        idx_i = np.asarray(groups[gi], dtype=np.intp)
        for gj in range(gi + 1, k):
            idx_j = np.asarray(groups[gj], dtype=np.intp)
            w = float(a[np.ix_(idx_i, idx_j)].sum())
            out[gi, gj] = out[gj, gi] = w
    return out
