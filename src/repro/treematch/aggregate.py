"""``AggregateComMatrix`` — collapse an affinity matrix onto groups.

After grouping at a tree level, the next level up sees each group as one
entity; the aggregated matrix entry ``[gi, gj]`` is the total affinity
between the members of group *gi* and group *gj*.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.util.matrix import check_square

__all__ = ["aggregate_comm_matrix"]


def aggregate_comm_matrix(m: np.ndarray, groups: list[list[int]]) -> np.ndarray:
    """Aggregate *m* over *groups*; returns a ``k × k`` matrix.

    Every process index must appear in exactly one group. Computed as a
    single ``G.T @ m @ G`` product with the group indicator matrix ``G``
    (then the diagonal zeroed and the upper triangle mirrored, matching
    the loop reference) instead of one fancy-indexed sum per group pair.
    """
    a = check_square(m, name="affinity matrix")
    p = a.shape[0]
    k = len(groups)

    flat = np.fromiter(
        (i for g in groups for i in g), dtype=np.int64,
        count=sum(len(g) for g in groups),
    )
    if flat.size and (flat.min() < 0 or flat.max() >= p):
        bad = flat[(flat < 0) | (flat >= p)][0]
        raise MappingError(f"group member {bad} outside order {p}")
    counts = np.bincount(flat, minlength=p) if flat.size else np.zeros(p, int)
    if (counts > 1).any():
        dup = int(np.flatnonzero(counts > 1)[0])
        raise MappingError(f"process {dup} appears in two groups")
    if flat.size != p:
        raise MappingError(f"groups cover {flat.size} of {p} processes")

    asg = np.empty(p, dtype=np.intp)
    pos = 0
    for gi, g in enumerate(groups):
        asg[pos : pos + len(g)] = gi
        pos += len(g)
    indicator = np.zeros((p, k))
    indicator[flat, asg] = 1.0
    out = indicator.T @ a @ indicator
    upper = np.triu(out, 1)
    return upper + upper.T
