"""``AggregateComMatrix`` — collapse an affinity matrix onto groups.

After grouping at a tree level, the next level up sees each group as one
entity; the aggregated matrix entry ``[gi, gj]`` is the total affinity
between the members of group *gi* and group *gj*.

Accepts either a dense array or a ``scipy.sparse`` matrix; the result is
always a (small) dense ``k × k`` array — ``k`` is a tree arity or a
subtree count, never large.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.util.matrix import check_square

try:  # pragma: no cover - optional dependency
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover
    _sp = None

__all__ = ["aggregate_comm_matrix", "group_assignment"]


def group_assignment(groups: list[list[int]], p: int) -> np.ndarray:
    """Validated member→group index array for an exact cover of ``0..p-1``."""
    flat = np.fromiter(
        (i for g in groups for i in g), dtype=np.int64,
        count=sum(len(g) for g in groups),
    )
    if flat.size and (flat.min() < 0 or flat.max() >= p):
        bad = flat[(flat < 0) | (flat >= p)][0]
        raise MappingError(f"group member {bad} outside order {p}")
    counts = np.bincount(flat, minlength=p) if flat.size else np.zeros(p, int)
    if (counts > 1).any():
        dup = int(np.flatnonzero(counts > 1)[0])
        raise MappingError(f"process {dup} appears in two groups")
    if flat.size != p:
        raise MappingError(f"groups cover {flat.size} of {p} processes")
    asg = np.empty(p, dtype=np.intp)
    pos = 0
    for gi, g in enumerate(groups):
        asg[pos : pos + len(g)] = gi
        pos += len(g)
    out = np.empty(p, dtype=np.intp)
    out[flat] = asg
    return out


def aggregate_comm_matrix(m, groups: list[list[int]]) -> np.ndarray:
    """Aggregate *m* over *groups*; returns a ``k × k`` dense matrix.

    Every process index must appear in exactly one group. The dense path
    is a single ``G.T @ m @ G`` product with the group indicator matrix
    ``G`` (then the diagonal zeroed and the upper triangle mirrored,
    matching the loop reference). The sparse path scatters the stored
    entries onto group pairs with one ``bincount`` — identical totals,
    O(nnz) instead of O(n²).
    """
    k = len(groups)
    if _sp is not None and _sp.issparse(m):
        p = m.shape[0]
        if m.shape[0] != m.shape[1]:
            raise MappingError(
                f"affinity matrix must be square, got shape {m.shape}"
            )
        asg = group_assignment(groups, p)
        coo = m.tocoo()
        gi = asg[coo.row]
        gj = asg[coo.col]
        upper = gi < gj
        out = np.zeros((k, k))
        # Entries with group(row) < group(col) are exactly the terms of
        # the dense reference's upper triangle of G.T @ m @ G; the
        # mirrored stored entries (group(row) > group(col)) are the same
        # pairs seen from the other side and must not be added twice.
        np.add.at(out, (gi[upper], gj[upper]), coo.data[upper])
        iu, ju = np.triu_indices(k, 1)
        out[ju, iu] = out[iu, ju]
        return out

    a = check_square(m, name="affinity matrix")
    p = a.shape[0]
    asg_of = group_assignment(groups, p)
    indicator = np.zeros((p, k))
    indicator[np.arange(p), asg_of] = 1.0
    out = indicator.T @ a @ indicator
    upper = np.triu(out, 1)
    return upper + upper.T
