"""Algorithm 1 — the full mapping driver (``MapGroups`` included).

Ties together the pieces: control-thread matrix extension, oversubscription
via a virtual level, bottom-up grouping + aggregation along the topology
arities, and the final assignment of every thread (compute and control) to
a PU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MappingError
from repro.topology.tree import Topology
from repro.treematch.aggregate import aggregate_comm_matrix
from repro.treematch.commmatrix import CommunicationMatrix
from repro.treematch.control import ControlPlan, extend_for_control_threads
from repro.treematch.grouping import _canonical, group_processes, refine_groups
from repro.treematch.maporder import child_distance_matrix, order_top_groups
from repro.treematch.oversub import manage_oversubscription

try:  # pragma: no cover - optional dependency
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover
    _sp = None

__all__ = ["Placement", "treematch_map", "multilevel_map", "map_order_block"]


@dataclass(frozen=True)
class Placement:
    """A computed thread→PU mapping.

    ``thread_to_pu`` binds compute threads, ``control_to_pu`` binds control
    threads (empty when ``control_mode == "os"``, i.e. the OS schedules
    them). ``reserved_pus`` lists PUs set aside for control threads (the
    hyperthread siblings or the spare cores of Fig. 2).
    """

    thread_to_pu: dict[int, int]
    control_to_pu: dict[int, int] = field(default_factory=dict)
    control_mode: str = "os"
    granularity: str = "pu"  # "core" when hyperthread-aware mapping was used
    oversub_factor: int = 1
    topology_name: str = ""
    groups_per_level: tuple = ()

    @property
    def reserved_pus(self) -> list[int]:
        return sorted(set(self.control_to_pu.values()) - set(self.thread_to_pu.values()))

    def cpuset_of_thread(self, tid: int) -> int:
        try:
            return self.thread_to_pu[tid]
        except KeyError:
            raise MappingError(f"thread {tid} not in placement") from None

    def to_dict(self) -> dict:
        """JSON-compatible form (inverse of :meth:`from_dict`)."""
        return {
            "thread_to_pu": {str(k): v for k, v in self.thread_to_pu.items()},
            "control_to_pu": {str(k): v for k, v in self.control_to_pu.items()},
            "control_mode": self.control_mode,
            "granularity": self.granularity,
            "oversub_factor": self.oversub_factor,
            "topology_name": self.topology_name,
            "groups_per_level": [
                [list(g) for g in level] for level in self.groups_per_level
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Placement":
        """Rebuild a placement recorded by :meth:`to_dict`."""
        try:
            return cls(
                thread_to_pu={int(k): int(v)
                              for k, v in data["thread_to_pu"].items()},
                control_to_pu={int(k): int(v)
                               for k, v in data.get("control_to_pu", {}).items()},
                control_mode=str(data.get("control_mode", "os")),
                granularity=str(data.get("granularity", "pu")),
                oversub_factor=int(data.get("oversub_factor", 1)),
                topology_name=str(data.get("topology_name", "")),
                groups_per_level=tuple(
                    tuple(tuple(int(i) for i in g) for g in level)
                    for level in data.get("groups_per_level", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise MappingError(f"bad placement record: {exc}") from exc

    def violations(
        self,
        topology: Topology,
        *,
        n_threads: int | None = None,
        n_control: int | None = None,
    ) -> list[tuple[str, str, str]]:
        """Structural checks of this mapping against *topology*.

        Returns ``(code, message, subject)`` tuples (empty = valid):

        * ``pu-out-of-range`` — a binding targets a PU the topology does
          not have;
        * ``unbound-thread`` — with *n_threads* given, a compute thread
          has no PU (its migrations cannot be proven zero);
        * ``unbound-control`` — with *n_control* given and a non-``os``
          control mode, a control thread has no PU;
        * ``oversubscribed-core`` — a mapping leaf (core in core
          granularity, PU otherwise) hosts more compute threads than
          ``oversub_factor`` allows;
        * ``control-on-compute-pu`` — a control thread shares its PU
          with a compute thread;
        * ``control-not-sibling`` — in ``ht-sibling`` mode, a control
          thread's PU shares a core with no compute thread.

        The severity policy lives in :mod:`repro.analyze.placement`;
        this method stays pure topology arithmetic.
        """
        out: list[tuple[str, str, str]] = []
        valid_pus = {pu.os_index for pu in topology.pus}
        for label, table in (
            ("compute", self.thread_to_pu),
            ("control", self.control_to_pu),
        ):
            for tid, pu in sorted(table.items()):
                if pu not in valid_pus:
                    out.append((
                        "pu-out-of-range",
                        f"{label} thread {tid} bound to PU {pu}, but "
                        f"{topology.name!r} has PUs "
                        f"0..{topology.n_pus - 1}",
                        f"{label}:{tid}",
                    ))
        if n_threads is not None:
            for tid in range(n_threads):
                if tid not in self.thread_to_pu:
                    out.append((
                        "unbound-thread",
                        f"compute thread {tid} has no PU in the mapping",
                        f"compute:{tid}",
                    ))
        if n_control is not None and self.control_mode != "os":
            for cid in range(n_control):
                if cid not in self.control_to_pu:
                    out.append((
                        "unbound-control",
                        f"control thread {cid} has no PU although control "
                        f"mode is {self.control_mode!r}",
                        f"control:{cid}",
                    ))

        # Per-leaf compute load against the oversubscription policy.
        def leaf_of(pu: int):
            if pu not in valid_pus:
                return None
            if self.granularity == "core":
                return ("core", topology.core_of_pu(pu).logical_index)
            return ("pu", pu)

        load: dict = {}
        for tid, pu in self.thread_to_pu.items():
            leaf = leaf_of(pu)
            if leaf is not None:
                load.setdefault(leaf, []).append(tid)
        for (kind, idx), tids in sorted(load.items()):
            if len(tids) > self.oversub_factor:
                out.append((
                    "oversubscribed-core",
                    f"{kind} {idx} hosts {len(tids)} compute threads "
                    f"{sorted(tids)} but the oversubscription policy "
                    f"allows {self.oversub_factor}",
                    f"{kind}:{idx}",
                ))

        compute_pus = set(self.thread_to_pu.values())
        compute_cores = {
            topology.core_of_pu(pu).logical_index
            for pu in compute_pus
            if pu in valid_pus
        }
        for cid, pu in sorted(self.control_to_pu.items()):
            if pu in compute_pus:
                out.append((
                    "control-on-compute-pu",
                    f"control thread {cid} bound to PU {pu}, which also "
                    "hosts a compute thread",
                    f"control:{cid}",
                ))
            elif (
                self.control_mode == "ht-sibling"
                and pu in valid_pus
                and topology.core_of_pu(pu).logical_index not in compute_cores
            ):
                out.append((
                    "control-not-sibling",
                    f"control thread {cid} on PU {pu} shares a core with "
                    "no compute thread despite ht-sibling control mode",
                    f"control:{cid}",
                ))
        return out

    def migrations_provably_zero(
        self, *, n_threads: int, n_control: int = 0
    ) -> bool:
        """True when every thread is pinned to exactly one PU.

        Singleton cpusets make the OS scheduler's placement a constant,
        so the migration counter must read 0 (the affinity rows of
        Tables II-IV). Control threads left to the OS (mode ``"os"``)
        may migrate, so they must be covered too.
        """
        if any(tid not in self.thread_to_pu for tid in range(n_threads)):
            return False
        if n_control > 0 and self.control_mode == "os":
            return False
        if n_control > 0:
            return all(c in self.control_to_pu for c in range(n_control))
        return True

    def _bound_threads(self, order: int) -> np.ndarray:
        """Thread ids < *order* that have a PU binding, ascending."""
        return np.asarray(
            sorted(t for t in self.thread_to_pu if 0 <= t < order),
            dtype=np.intp,
        )

    def _pairwise_cost(
        self, comm: CommunicationMatrix, pu_metric: dict[int, int],
        metric_matrix: np.ndarray,
    ) -> float:
        """Half the sum of ``affinity[i, j] * metric[m(pu_i), m(pu_j)]``.

        Shared engine of :meth:`cost` and :meth:`slit_cost`: threads are
        gathered into index arrays once and the weighted sum runs in row
        blocks of the affinity matrix, so a 4096-thread evaluation is a
        handful of vectorized passes instead of p^2 dict lookups.
        """
        tids = self._bound_threads(comm.order)
        if tids.size < 2:
            return 0.0
        if getattr(comm, "is_sparse", False):
            # O(nnz) path: walk the stored affinity entries once instead
            # of densifying (a million-task matrix never fits dense).
            coo = comm.affinity_sparse().tocoo()
            midx_s = np.asarray(
                [pu_metric[self.thread_to_pu[int(t)]] for t in tids],
                dtype=np.intp,
            )
            pos = np.full(comm.order, -1, dtype=np.int64)
            pos[tids] = np.arange(tids.size)
            pr = pos[coo.row]
            pc = pos[coo.col]
            ok = (pr >= 0) & (pc >= 0)
            total = float(
                (coo.data[ok]
                 * metric_matrix[midx_s[pr[ok]], midx_s[pc[ok]]]).sum()
            )
            return total / 2.0
        aff = comm.affinity()
        midx = np.asarray(
            [pu_metric[self.thread_to_pu[int(t)]] for t in tids],
            dtype=np.intp,
        )
        total = 0.0
        block = 1024
        for start in range(0, tids.size, block):
            stop = min(start + block, tids.size)
            sub = aff[np.ix_(tids[start:stop], tids)]
            total += float(
                (sub * metric_matrix[np.ix_(midx[start:stop], midx)]).sum()
            )
        return total / 2.0

    def slit_cost(self, topology: Topology, comm: CommunicationMatrix) -> float:
        """Traffic weighted by SLIT NUMA distance (latency-proportional).

        Unlike :meth:`cost` (tree-depth separation, which treats all
        cross-node pairs equally), this metric sees the interconnect's
        non-uniformity — the quantity the distance-aware MapGroups
        ordering optimizes.
        """
        from repro.topology.distance import numa_distance_matrix

        dist = numa_distance_matrix(topology)
        node_of: dict[int, int] = {}
        for pu in set(self.thread_to_pu.values()):
            numa = topology.numa_of_pu(pu)
            node_of[pu] = numa.logical_index if numa is not None else 0
        return self._pairwise_cost(comm, node_of, dist)

    def cost(self, topology: Topology, comm: CommunicationMatrix) -> float:
        """Communication-distance objective: sum of traffic × tree distance.

        Distance between two PUs is the number of tree levels separating
        them from their deepest common ancestor (0 when they share a core).
        The pairwise tree distances are computed once per distinct PU pair
        (at most n_pus^2, independent of the thread count), then the
        traffic-weighted sum is evaluated vectorized.
        """
        max_depth = topology.tree_depth - 1
        used = sorted({
            pu for t, pu in self.thread_to_pu.items() if 0 <= t < comm.order
        })
        nd = len(used)
        dmat = np.zeros((nd, nd))
        for a in range(nd):
            for b in range(a + 1, nd):
                d = max_depth - topology.common_ancestor_depth(
                    used[a], used[b]
                )
                dmat[a, b] = dmat[b, a] = d
        slot_of = {pu: i for i, pu in enumerate(used)}
        return self._pairwise_cost(comm, slot_of, dmat)


def treematch_map(
    topology: Topology,
    comm: CommunicationMatrix,
    *,
    n_control: int = 0,
    control_owners: list[int] | None = None,
    hyperthread_aware: bool = True,
    engine: str | None = None,
    refine: bool = True,
    distance_aware: bool = True,
    warm_start: Placement | None = None,
    refine_stats: dict | None = None,
) -> Placement:
    """Compute the topology-aware placement of *comm*'s threads (Algorithm 1).

    Parameters mirror the paper's adaptations:

    * ``n_control`` — number of ORWL control threads to account for
      (line 1 of Algorithm 1). ``control_owners[j]`` names the compute
      thread whose locations control thread *j* manages (default
      ``j % n_compute``).
    * ``hyperthread_aware`` — when the machine has hyperthreads, map
      compute threads one-per-physical-core and reserve sibling PUs for
      control threads (the paper's systematically applied policy).
    * ``engine``/``refine`` — pin the :func:`group_processes` engine
      (ablation hooks; default = size-based selection with refinement).
    * ``distance_aware`` — order the final groups onto the root's
      children by interconnect distance (see
      :mod:`repro.treematch.maporder`) instead of arbitrarily.
    * ``warm_start`` — a prior :class:`Placement` of the *same* problem
      shape (same topology, same extended thread count): each level's
      grouping is seeded from the prior run's groups and only *refined*
      (pairwise-swap local search) instead of grouped from scratch.
      Seeded with a placement that is already locally optimal for
      *comm* — e.g. its own cold-start output — the result is
      bit-identical to the cold start. ``refine_stats`` (a dict)
      accumulates the ``"sweeps"``/``"swaps"`` counters of every
      :func:`refine_groups` call, which is how warm-start convergence
      is counted. Raises :class:`MappingError` when the warm placement
      is structurally incompatible.
    """
    if warm_start is not None:
        _check_warm_start(topology, warm_start)
    p = comm.order
    if p == 0:
        raise MappingError("empty communication matrix")
    aff = comm.affinity()

    leaf_objs, arities, granularity = _leaf_view(topology, hyperthread_aware)
    core_mode = granularity == "core"
    n_leaves = len(leaf_objs)

    owners = control_owners if control_owners is not None else [
        j % p for j in range(n_control)
    ]
    if len(owners) != n_control:
        raise MappingError(
            f"{len(owners)} control owners for {n_control} control threads"
        )

    # Line 1: extend the matrix to manage control threads.
    ext, control_plan = extend_for_control_threads(
        aff,
        n_control,
        n_leaves,
        hyperthreading=core_mode,
        control_owners=owners[: max(0, n_leaves - p)],
    )
    p_ext = ext.shape[0]

    # Line 2: manage oversubscription with a virtual level.
    plan = manage_oversubscription(list(arities), p_ext)
    lv = plan.virtual_leaves

    # Pad with dummy (zero-communication) threads up to the leaf count.
    m_cur = np.zeros((lv, lv))
    m_cur[:p_ext, :p_ext] = ext

    # Lines 4-7: group bottom-up, aggregating between levels.
    clusters: list[list[int]] = [[i] for i in range(lv)]
    groups_per_level: list[list[list[int]]] = []
    arity_list = list(reversed(plan.arities))
    if warm_start is not None and len(warm_start.groups_per_level) != len(
        arity_list
    ):
        raise MappingError(
            f"warm-start placement has {len(warm_start.groups_per_level)} "
            f"grouping levels; this problem has {len(arity_list)}"
        )
    for li, a in enumerate(arity_list):
        at_root = li == len(arity_list) - 1
        if (
            at_root
            and distance_aware
            and a > 2
            and len(clusters) == a
            and len(topology.root.children) == a
        ):
            # MapGroups refinement: the member order of the final (single)
            # group assigns subtrees to the root's children — pick it by
            # interconnect distance instead of index order.
            dist = child_distance_matrix(topology)
            ordered = order_top_groups(
                [[i] for i in range(a)], m_cur, dist
            )
            groups = [[g[0] for g in ordered]]
        elif warm_start is not None:
            seed = _warm_level_seed(
                warm_start.groups_per_level[li], li, a, len(clusters)
            )
            groups = _canonical(
                refine_groups(m_cur, seed, stats=refine_stats)
            )
        else:
            groups = group_processes(
                m_cur, a, force=engine, refine=refine, stats=refine_stats
            )
        clusters = [
            [tid for ci in g for tid in clusters[ci]] for g in groups
        ]
        groups_per_level.append(groups)
        m_cur = aggregate_comm_matrix(m_cur, groups)
    if len(clusters) != 1:
        raise MappingError(
            f"grouping terminated with {len(clusters)} clusters (tree arities "
            f"{plan.arities})"
        )

    # Line 8: MapGroups — position q in the flattened order is virtual leaf
    # q, i.e. physical leaf q // factor (threads "go up one level" when
    # oversubscribed).
    flat = clusters[0]
    thread_to_pu: dict[int, int] = {}
    slot_pus: dict[int, int] = {}
    for q, tid in enumerate(flat):
        leaf = leaf_objs[q // plan.factor]
        if tid < p:
            thread_to_pu[tid] = leaf.os_index
        elif tid < p_ext:
            slot_pus[tid - p] = leaf.os_index

    control_to_pu = _bind_control_threads(
        topology, control_plan, thread_to_pu, slot_pus, owners
    )

    return Placement(
        thread_to_pu=thread_to_pu,
        control_to_pu=control_to_pu,
        control_mode=control_plan.mode,
        granularity=granularity,
        oversub_factor=plan.factor,
        topology_name=topology.name,
        groups_per_level=tuple(
            tuple(tuple(g) for g in level) for level in groups_per_level
        ),
    )


def _check_warm_start(topology: Topology, warm: Placement) -> None:
    """Structural compatibility of a warm-start seed placement."""
    if warm.topology_name and warm.topology_name != topology.name:
        raise MappingError(
            f"warm-start placement was computed for {warm.topology_name!r}, "
            f"not {topology.name!r}"
        )
    if not warm.groups_per_level:
        raise MappingError(
            "warm-start placement records no per-level groups (multilevel "
            "placements cannot seed the direct pipeline)"
        )


def _warm_level_seed(
    level: tuple[tuple[int, ...], ...], li: int, arity: int, count: int
) -> list[list[int]]:
    """Validate one warm-start level as a partition of ``range(count)``
    into ``count // arity`` groups of size *arity*; returns it as lists.
    """
    seed = [list(g) for g in level]
    if len(seed) * arity != count or any(len(g) != arity for g in seed):
        raise MappingError(
            f"warm-start level {li}: expected {count // arity} groups of "
            f"size {arity}, got sizes {[len(g) for g in seed]}"
        )
    seen = sorted(i for g in seed for i in g)
    if seen != list(range(count)):
        raise MappingError(
            f"warm-start level {li}: groups do not partition "
            f"range({count})"
        )
    return seed


def _leaf_view(
    topology: Topology, hyperthread_aware: bool
) -> tuple[list, list[int], str]:
    """Mapping leaves and level arities at the chosen granularity.

    With hyperthreads and ``hyperthread_aware``, compute threads map
    one-per-core (first PU of each core) and the PU level drops out of
    the arity list; otherwise every PU is a leaf.
    """
    if hyperthread_aware and topology.has_hyperthreading:
        leaf_objs = [core.children[0] for core in topology.cores]
        arities = list(topology.level_arities()[:-1])
        granularity = "core"
    else:
        # PUs in tree order; one entry per leaf of the full tree.
        leaf_objs = [pu for core in topology.cores for pu in core.leaves()]
        arities = list(topology.level_arities())
        granularity = "pu"
    return leaf_objs, arities, granularity


# -- the multilevel engine (ISSUE 7) -------------------------------------------

#: Subtree size below which parallel fan-out costs more (pickling, b64,
#: process dispatch) than it saves; such blocks are ordered in-process.
PARALLEL_MIN_TASKS = 8192


def _pad_affinity(aff, lv: int):
    """Extend *aff* with zero-communication padding rows up to order *lv*."""
    n = int(aff.shape[0])
    if lv == n:
        return aff
    if _sp is not None and _sp.issparse(aff):
        csr = _sp.csr_array(aff)
        indptr = np.concatenate([
            np.asarray(csr.indptr, dtype=np.int64),
            np.full(lv - n, csr.indptr[-1], dtype=np.int64),
        ])
        return _sp.csr_array(
            (csr.data, csr.indices, indptr), shape=(lv, lv)
        )
    out = np.zeros((lv, lv))
    out[:n, :n] = aff
    return out


def _order_block(aff, arities: list[int]) -> list[int]:
    """Recursively order a block's tasks onto its subtree's virtual leaves.

    Splits along the first remaining arity, then recurses into each
    part's submatrix; position ``q`` of the returned permutation is the
    task on virtual leaf ``q`` of this subtree.
    """
    from repro.treematch.bisect import split_k
    from repro.treematch.coarsen import take_submatrix

    n = int(aff.shape[0])
    if n == 1 or not arities:
        return list(range(n))
    k = arities[0]
    if k >= n:
        # Splitting into singletons: every task is its own virtual leaf
        # and any remaining arities are 1s — the order is the identity.
        return list(range(n))
    parts = split_k(aff, k)
    rest = arities[1:]
    if not rest or (len(rest) == 1 and rest[0] >= len(parts[0])):
        # Terminal blocks: the remainder cannot reorder within a part
        # (each part lands on one leaf / becomes singletons), so skip
        # the per-part submatrix extraction entirely.
        return [int(i) for part in parts for i in part]
    out: list[int] = []
    for part in parts:
        ia = np.asarray(part, dtype=np.intp)
        sub = take_submatrix(aff, ia)
        for q in _order_block(sub, rest):
            out.append(int(ia[q]))
    return out


def map_order_block(
    indptr, indices, data, n: int, arities
) -> list[int]:
    """Order a CSR-triple block — the pure core of the ``map-subtree`` job.

    Rebuilds the affinity backend (sparse when scipy is available, dense
    otherwise) and runs the same :func:`_order_block` recursion the
    in-process path uses, so results are identical for any worker count.
    """
    ip = np.asarray(indptr, dtype=np.int64)
    ix = np.asarray(indices, dtype=np.int64)
    dv = np.asarray(data, dtype=np.float64)
    if _sp is not None:
        aff = _sp.csr_array((dv, ix, ip), shape=(n, n))
    else:  # pragma: no cover - exercised only without scipy
        from repro.treematch.coarsen import parts_to_dense

        aff = parts_to_dense(ip, ix, dv, n)
    return _order_block(aff, list(arities))


def _b64(arr: np.ndarray) -> str:
    import base64

    return base64.b64encode(arr.tobytes()).decode("ascii")


def _subtree_orders(
    aff, parts: list[list[int]], rest: list[int], *, n_jobs, cache
) -> list[list[int]]:
    """Order every part's submatrix, fanning out over the executor when
    the subtrees are big enough to amortize process dispatch."""
    from repro.treematch.coarsen import take_submatrix

    subs = [
        take_submatrix(aff, np.asarray(part, dtype=np.intp))
        for part in parts
    ]
    size = len(parts[0]) if parts else 0
    use_jobs = (
        n_jobs != 1
        and len(parts) > 1
        and size >= PARALLEL_MIN_TASKS
        and _sp is not None
        and all(_sp.issparse(s) for s in subs)
    )
    if not use_jobs:
        return [_order_block(s, rest) for s in subs]

    from repro.experiments.runner import TINY
    from repro.parallel.executor import run_jobs
    from repro.parallel.jobs import make_job

    jobs = []
    for s in subs:
        csr = _sp.csr_array(s)
        jobs.append(make_job(
            "map-subtree",
            TINY,
            {
                "n": int(csr.shape[0]),
                "arities": tuple(int(a) for a in rest),
                "indptr": _b64(np.asarray(csr.indptr, dtype=np.int64)),
                "indices": _b64(np.asarray(csr.indices, dtype=np.int64)),
                "data": _b64(np.asarray(csr.data, dtype=np.float64)),
            },
            0,
        ))
    payloads = run_jobs(jobs, n_jobs=n_jobs, cache=cache)
    return [[int(q) for q in payload["order"]] for payload in payloads]


def multilevel_map(
    topology: Topology,
    comm: CommunicationMatrix,
    *,
    hyperthread_aware: bool = True,
    distance_aware: bool = True,
    n_jobs: int | None = 1,
    cache=None,
) -> Placement:
    """Scalable TreeMatch: multilevel coarsening + recursive bisection.

    Equivalent in structure to :func:`treematch_map` — threads are
    grouped along the topology arities and oversubscription goes through
    the same virtual level — but the grouping runs top-down as recursive
    bisection on a coarsened affinity graph, so a sparse million-task
    matrix maps without any O(n²) work. Independent subtree problems
    after the first split are fanned out over the ``repro.parallel``
    executor (``n_jobs``: 1 = in-process, None = ``REPRO_JOBS``, 0 = one
    worker per CPU; results are identical for any worker count, and
    ``cache`` follows :func:`repro.parallel.executor.run_jobs`).

    Control threads are not modelled on this path (``control_mode`` is
    always ``"os"``) — at the scales where multilevel matters,
    per-thread control slots are noise; use :func:`treematch_map` below
    the cutover when control placement matters.
    """
    p = comm.order
    if p == 0:
        raise MappingError("empty communication matrix")
    leaf_objs, arities, granularity = _leaf_view(topology, hyperthread_aware)

    plan = manage_oversubscription(arities, p)
    lv = plan.virtual_leaves
    aff = _pad_affinity(comm.affinity_any(), lv)

    seq = [a for a in plan.arities if a > 1]
    if seq:
        from repro.treematch.bisect import split_k

        k0 = seq[0]
        parts = split_k(aff, k0)
        if (
            distance_aware
            and k0 > 2
            and len(topology.root.children) == k0
        ):
            # MapGroups refinement, as in treematch_map: assign the top
            # parts to the root's children by interconnect distance.
            agg = aggregate_comm_matrix(aff, parts)
            dist = child_distance_matrix(topology)
            ordered = order_top_groups([[i] for i in range(k0)], agg, dist)
            parts = [parts[g[0]] for g in ordered]
        sub_orders = _subtree_orders(
            aff, parts, seq[1:], n_jobs=n_jobs, cache=cache
        )
        flat: list[int] = []
        for part, sub_order in zip(parts, sub_orders):
            for q in sub_order:
                flat.append(part[q])
    else:
        flat = list(range(lv))

    thread_to_pu: dict[int, int] = {}
    for q, tid in enumerate(flat):
        if tid < p:
            thread_to_pu[tid] = leaf_objs[q // plan.factor].os_index
    return Placement(
        thread_to_pu=thread_to_pu,
        control_mode="os",
        granularity=granularity,
        oversub_factor=plan.factor,
        topology_name=topology.name,
        groups_per_level=(),
    )


def _bind_control_threads(
    topology: Topology,
    control_plan: ControlPlan,
    thread_to_pu: dict[int, int],
    slot_pus: dict[int, int],
    owners: list[int],
) -> dict[int, int]:
    """Assign each control thread a PU according to the control plan."""
    if control_plan.mode == "ht-sibling":
        out: dict[int, int] = {}
        for j, owner in enumerate(owners):
            owner_pu = thread_to_pu.get(owner)
            if owner_pu is None:
                continue
            siblings = topology.siblings_of_pu(owner_pu)
            if not siblings:
                continue
            out[j] = siblings[j % len(siblings)].os_index
        return out
    if control_plan.mode == "spare-core":
        if not slot_pus:
            return {}
        slots = sorted(slot_pus)
        return {
            j: slot_pus[slots[j % len(slots)]] for j in range(len(owners))
        }
    return {}
