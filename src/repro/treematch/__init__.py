"""TreeMatch — topology-aware process/thread placement (Algorithm 1).

Reimplements the TreeMatch algorithm of Jeannot, Mercier & Tessier (TPDS
2014) as adapted by the paper: bottom-up grouping of communicating threads
along the topology-tree arities, matrix aggregation between levels, plus
the two ORWL-specific extensions — control-thread handling (line 1 of
Algorithm 1) and oversubscription via a virtual tree level (line 2).

Baseline strategies (``compact``, ``scatter``, ``spread`` …) used by the
paper's OpenMP/MKL comparisons live in :mod:`repro.treematch.strategies`.
"""

from repro.treematch.aggregate import aggregate_comm_matrix
from repro.treematch.commmatrix import CommunicationMatrix
from repro.treematch.control import ControlPlan, extend_for_control_threads
from repro.treematch.grouping import group_processes
from repro.treematch.maporder import child_distance_matrix, order_top_groups
from repro.treematch.bisect import split_k
from repro.treematch.coarsen import coarsen
from repro.treematch.mapping import Placement, multilevel_map, treematch_map
from repro.treematch.oversub import manage_oversubscription
from repro.treematch.strategies import (
    MULTILEVEL_CUTOVER,
    compact_placement,
    cores_close_placement,
    cores_spread_placement,
    map_with_strategy,
    mapping_strategy,
    scatter_placement,
    sequential_placement,
    strategy_by_name,
)

__all__ = [
    "CommunicationMatrix",
    "group_processes",
    "aggregate_comm_matrix",
    "manage_oversubscription",
    "ControlPlan",
    "extend_for_control_threads",
    "Placement",
    "treematch_map",
    "multilevel_map",
    "map_with_strategy",
    "mapping_strategy",
    "MULTILEVEL_CUTOVER",
    "coarsen",
    "split_k",
    "child_distance_matrix",
    "order_top_groups",
    "compact_placement",
    "scatter_placement",
    "cores_close_placement",
    "cores_spread_placement",
    "sequential_placement",
    "strategy_by_name",
]
