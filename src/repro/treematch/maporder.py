"""Distance-aware ordering of the top-level groups (MapGroups refinement).

Plain TreeMatch assigns the final groups to the root's children in
arbitrary order — harmless inside a socket where all leaves are
equidistant, but the *top* level of a NUMAlink machine is not uniform:
node 0 is one router hop from node 1 but several from node 8 (see
:mod:`repro.topology.distance`). This pass permutes the top-level group
assignment to put heavily-communicating groups on nearby NUMA nodes:
greedy seeding followed by pairwise-swap refinement, using the aggregated
matrix of the last grouping level.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.topology.distance import numa_distance_matrix
from repro.topology.objects import ObjType
from repro.topology.tree import Topology

__all__ = ["child_distance_matrix", "order_top_groups"]


def child_distance_matrix(topology: Topology) -> np.ndarray:
    """Pairwise distance between the root's children.

    Each child subtree is represented by its first NUMA node; the entry
    is the SLIT distance between representatives. For machines whose root
    children *are* the NUMA nodes this is exactly the SLIT matrix.
    """
    children = topology.root.children
    if not children:
        raise MappingError("topology root has no children")
    dist = numa_distance_matrix(topology)

    def rep_numa(obj) -> int:
        if obj.type is ObjType.NUMANODE:
            return obj.logical_index
        for node in obj.descendants():
            if node.type is ObjType.NUMANODE:
                return node.logical_index
        raise MappingError(f"no NUMA node under root child {obj!r}")

    reps = [rep_numa(c) for c in children]
    k = len(reps)
    out = np.empty((k, k))
    for i in range(k):
        for j in range(k):
            out[i, j] = dist[reps[i], reps[j]]
    return out


def placement_cost(m: np.ndarray, slots: list[int], dist: np.ndarray) -> float:
    """Cost of assigning group g to child ``slots[g]``."""
    k = len(slots)
    if k < 2:
        return 0.0
    s = np.asarray(slots, dtype=np.intp)
    iu, ju = np.triu_indices(k, 1)
    return float(
        (np.asarray(m)[iu, ju] * np.asarray(dist)[s[iu], s[ju]]).sum()
    )


def order_top_groups(
    groups: list[list[int]],
    m: np.ndarray,
    dist: np.ndarray,
    *,
    swap_rounds: int = 4,
) -> list[list[int]]:
    """Permute *groups* so group ``i`` of the result belongs on child ``i``.

    *m* is the affinity matrix between the groups (order == len(groups));
    *dist* the child distance matrix. Greedy construction (heaviest
    communicator first, nearest free child) plus 2-opt swap refinement.
    The 2-opt pass evaluates each candidate swap by its O(k) cost delta
    instead of recomputing the full O(k^2) objective.
    """
    k = len(groups)
    if m.shape != (k, k) or dist.shape != (k, k):
        raise MappingError(
            f"order_top_groups: {k} groups vs matrix {m.shape} / dist {dist.shape}"
        )
    if k <= 2:
        return [list(g) for g in groups]
    m = np.asarray(m, dtype=np.float64)
    dist = np.asarray(dist, dtype=np.float64)

    # Greedy: seed with the group with most total traffic on the child
    # with minimal total distance (the "center" of the interconnect).
    totals = m.sum(axis=1)
    order_groups = list(np.argsort(-totals, kind="stable"))
    center = int(np.argmin(dist.sum(axis=1)))
    slots = np.full(k, -1, dtype=np.intp)  # slots[g] = child index
    free_children = set(range(k))
    placed: list[int] = []

    first = order_groups[0]
    slots[first] = center
    free_children.discard(center)
    placed.append(first)

    for g in order_groups[1:]:
        free = np.asarray(sorted(free_children), dtype=np.intp)
        placed_arr = np.asarray(placed, dtype=np.intp)
        costs = dist[np.ix_(free, slots[placed_arr])] @ m[g, placed_arr]
        best_child = int(free[int(np.argmin(costs))])
        slots[g] = best_child
        free_children.discard(best_child)
        placed.append(g)

    # 2-opt: swap child assignments while it lowers the objective. The
    # delta of swapping a and b only involves pairs touching a or b.
    for _ in range(swap_rounds):
        improved = False
        for a in range(k):
            for b in range(a + 1, k):
                sa, sb = slots[a], slots[b]
                shift_a = (dist[sb] - dist[sa])[slots]
                shift_b = (dist[sa] - dist[sb])[slots]
                delta = float(m[a] @ shift_a + m[b] @ shift_b)
                # Remove the self and pair terms the row products picked
                # up, then add the pair's true post-swap change.
                delta -= m[a, a] * shift_a[a] + m[a, b] * shift_a[b]
                delta -= m[b, a] * shift_b[a] + m[b, b] * shift_b[b]
                delta += m[a, b] * (dist[sb, sa] - dist[sa, sb])
                if delta < -1e-12:
                    slots[a], slots[b] = sb, sa
                    improved = True
        if not improved:
            break

    # groups_out[child] = the group assigned to that child.
    out: list[list[int]] = [[] for _ in range(k)]
    for g, c in enumerate(slots):
        out[int(c)] = list(groups[g])
    return out
