"""Distance-aware ordering of the top-level groups (MapGroups refinement).

Plain TreeMatch assigns the final groups to the root's children in
arbitrary order — harmless inside a socket where all leaves are
equidistant, but the *top* level of a NUMAlink machine is not uniform:
node 0 is one router hop from node 1 but several from node 8 (see
:mod:`repro.topology.distance`). This pass permutes the top-level group
assignment to put heavily-communicating groups on nearby NUMA nodes:
greedy seeding followed by pairwise-swap refinement, using the aggregated
matrix of the last grouping level.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.topology.distance import numa_distance_matrix
from repro.topology.objects import ObjType
from repro.topology.tree import Topology

__all__ = ["child_distance_matrix", "order_top_groups"]


def child_distance_matrix(topology: Topology) -> np.ndarray:
    """Pairwise distance between the root's children.

    Each child subtree is represented by its first NUMA node; the entry
    is the SLIT distance between representatives. For machines whose root
    children *are* the NUMA nodes this is exactly the SLIT matrix.
    """
    children = topology.root.children
    if not children:
        raise MappingError("topology root has no children")
    dist = numa_distance_matrix(topology)

    def rep_numa(obj) -> int:
        if obj.type is ObjType.NUMANODE:
            return obj.logical_index
        for node in obj.descendants():
            if node.type is ObjType.NUMANODE:
                return node.logical_index
        raise MappingError(f"no NUMA node under root child {obj!r}")

    reps = [rep_numa(c) for c in children]
    k = len(reps)
    out = np.empty((k, k))
    for i in range(k):
        for j in range(k):
            out[i, j] = dist[reps[i], reps[j]]
    return out


def placement_cost(m: np.ndarray, slots: list[int], dist: np.ndarray) -> float:
    """Cost of assigning group g to child ``slots[g]``."""
    total = 0.0
    k = len(slots)
    for a in range(k):
        for b in range(a + 1, k):
            w = m[a, b]
            if w:
                total += w * dist[slots[a], slots[b]]
    return total


def order_top_groups(
    groups: list[list[int]],
    m: np.ndarray,
    dist: np.ndarray,
    *,
    swap_rounds: int = 4,
) -> list[list[int]]:
    """Permute *groups* so group ``i`` of the result belongs on child ``i``.

    *m* is the affinity matrix between the groups (order == len(groups));
    *dist* the child distance matrix. Greedy construction (heaviest
    communicator first, nearest free child) plus 2-opt swap refinement.
    """
    k = len(groups)
    if m.shape != (k, k) or dist.shape != (k, k):
        raise MappingError(
            f"order_top_groups: {k} groups vs matrix {m.shape} / dist {dist.shape}"
        )
    if k <= 2:
        return [list(g) for g in groups]

    # Greedy: seed with the group with most total traffic on the child
    # with minimal total distance (the "center" of the interconnect).
    totals = m.sum(axis=1)
    order_groups = list(np.argsort(-totals, kind="stable"))
    center = int(np.argmin(dist.sum(axis=1)))
    slots = [-1] * k  # slots[g] = child index
    free_children = set(range(k))
    placed: list[int] = []

    first = order_groups[0]
    slots[first] = center
    free_children.discard(center)
    placed.append(first)

    for g in order_groups[1:]:
        best_child, best_cost = -1, np.inf
        for c in sorted(free_children):
            cost = sum(m[g, p] * dist[c, slots[p]] for p in placed)
            if cost < best_cost:
                best_child, best_cost = c, cost
        slots[g] = best_child
        free_children.discard(best_child)
        placed.append(g)

    # 2-opt: swap child assignments while it lowers the objective.
    for _ in range(swap_rounds):
        improved = False
        for a in range(k):
            for b in range(a + 1, k):
                current = placement_cost(m, slots, dist)
                slots[a], slots[b] = slots[b], slots[a]
                if placement_cost(m, slots, dist) < current - 1e-12:
                    improved = True
                else:
                    slots[a], slots[b] = slots[b], slots[a]
        if not improved:
            break

    # groups_out[child] = the group assigned to that child.
    out: list[list[int]] = [[] for _ in range(k)]
    for g, c in enumerate(slots):
        out[c] = list(groups[g])
    return out
