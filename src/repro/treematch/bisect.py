"""Recursive-bisection k-way splitting on the coarsening hierarchy.

:func:`split_k` partitions the ``n`` tasks of an affinity matrix into
``k`` equal parts (``n % k == 0``) — the step the multilevel mapper runs
once per topology level instead of grouping the full matrix. Small
problems go straight to the dense :func:`group_processes` engines; large
ones follow the classic multilevel scheme (*Shared-Memory Hierarchical
Process Mapping*, Schulz & Woydt):

1. coarsen the affinity graph once (heavy-edge matching) down to a few
   hundred weighted vertices,
2. partition the coarsest graph by recursive bisection — each bisection
   greedily grows one side by affinity until it holds its share of the
   fine-task weight,
3. uncoarsen: project the partition level by level, running the
   ``refine_groups`` delta-gain local search on every level small enough
   to densify, and
4. restore exact part sizes at the finest level with gain-aware moves
   (coarse vertices are indivisible, so steps 2–3 can overshoot).

Deterministic throughout: greedy ties break on the smallest index and
every sweep visits candidates in a sorted order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError
from repro.treematch.coarsen import coarsen, parts_to_dense
from repro.treematch.grouping import group_processes, refine_groups

try:  # pragma: no cover - optional dependency
    from scipy import sparse as _sp
except ImportError:  # pragma: no cover
    _sp = None

__all__ = ["split_k", "DIRECT_LIMIT", "REFINE_LIMIT"]

#: Below this order the dense group/refine engines run directly on the
#: full matrix — coarsening overhead would exceed the grouping cost.
DIRECT_LIMIT = 512

#: Coarse levels up to this order are densified for ``refine_groups``
#: during uncoarsening; larger levels are projected without local search.
REFINE_LIMIT = 2048

#: Coarsening stops around ``max(COARSE_MIN, COARSE_PER_PART * k)``
#: vertices, so the coarsest partition sees a few vertices per part.
COARSE_PER_PART = 16
COARSE_MIN = 128


def _densify(aff) -> np.ndarray:
    if _sp is not None and _sp.issparse(aff):
        return np.asarray(aff.todense(), dtype=np.float64)
    return np.asarray(aff, dtype=np.float64)


def _grow_side(
    sub: np.ndarray, wloc: np.ndarray, target: int
) -> np.ndarray:
    """Boolean mask of one bisection side, grown greedily by affinity.

    Seeds at the vertex of largest weighted degree, then repeatedly pulls
    in the free vertex most attracted to the side until the side's
    fine-task weight reaches *target* (overshooting by at most one coarse
    vertex) — always leaving at least one vertex for the other side.
    """
    nloc = sub.shape[0]
    in_a = np.zeros(nloc, dtype=bool)
    seed = int(sub.sum(axis=1).argmax())
    in_a[seed] = True
    attract = sub[seed].copy()
    attract[seed] = -np.inf
    wa = int(wloc[seed])
    count = 1
    while wa < target and count < nloc - 1:
        v = int(attract.argmax())
        in_a[v] = True
        attract += sub[v]
        attract[v] = -np.inf
        wa += int(wloc[v])
        count += 1
    return in_a


def _partition_weighted(
    m: np.ndarray, weights: np.ndarray, k: int, per_part: int
) -> np.ndarray:
    """Recursive bisection of the (small, dense) coarsest graph.

    ``weights[v]`` counts fine tasks inside coarse vertex ``v``; each of
    the *k* parts targets ``per_part`` fine tasks. Returns the vertex→part
    assignment; parts are numbered left-to-right in recursion order.
    """
    n = m.shape[0]
    asg = np.full(n, -1, dtype=np.intp)
    next_part = 0

    def rec(idx: np.ndarray, kk: int) -> None:
        nonlocal next_part
        if kk == 1 or idx.size <= 1:
            asg[idx] = next_part
            next_part += kk
            return
        k1 = (kk + 1) // 2
        sub = m[np.ix_(idx, idx)]
        side = _grow_side(sub, weights[idx], per_part * k1)
        rec(idx[side], k1)
        rec(idx[~side], kk - k1)

    rec(np.arange(n), k)
    return asg


def _refine_asg(dense: np.ndarray, asg: np.ndarray, k: int) -> np.ndarray:
    """Run ``refine_groups`` on an assignment array (size-preserving)."""
    groups = [np.flatnonzero(asg == g).tolist() for g in range(k)]
    refined = refine_groups(dense, groups)
    out = np.empty_like(asg)
    for gi, g in enumerate(refined):
        out[np.asarray(g, dtype=np.intp)] = gi
    return out


def _attraction_rows(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    asg: np.ndarray,
    k: int,
    cand: np.ndarray,
) -> np.ndarray:
    """Attraction of each candidate vertex to every part (|cand| × k)."""
    nc = cand.size
    attr = np.zeros((nc, k))
    if nc == 0:
        return attr
    spans = [
        np.arange(indptr[v], indptr[v + 1]) for v in cand.tolist()
    ]
    idx = np.concatenate(spans) if spans else np.empty(0, dtype=np.int64)
    rows = np.repeat(np.arange(nc), indptr[cand + 1] - indptr[cand])
    np.add.at(attr, (rows, asg[indices[idx]]), data[idx])
    return attr


def _rebalance_exact(
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    asg: np.ndarray,
    k: int,
    size: int,
) -> np.ndarray:
    """Move vertices out of over-full parts until every part holds *size*.

    Runs on the finest level only (unit weights, so exact balance is
    reachable). Each pass ranks the over-full parts' vertices by the gain
    of moving to their most attractive under-full part and applies the
    moves greedily under the capacity constraints; every pass strictly
    shrinks the total excess, so the loop terminates.
    """
    loads = np.bincount(asg, minlength=k)
    while True:
        excess = loads - size
        over = np.flatnonzero(excess > 0)
        if over.size == 0:
            return asg
        under = np.flatnonzero(excess < 0)
        cand = np.flatnonzero(np.isin(asg, over))
        attr = _attraction_rows(indptr, indices, data, asg, k, cand)
        to_under = attr[:, under]
        dest_pos = to_under.argmax(axis=1)
        best_dest = under[dest_pos]
        rows = np.arange(cand.size)
        gain = to_under[rows, dest_pos] - attr[rows, asg[cand]]
        order = np.argsort(-gain, kind="stable")
        moved = False
        for oi in order:
            v = int(cand[oi])
            src = int(asg[v])
            dst = int(best_dest[oi])
            if loads[src] <= size or loads[dst] >= size:
                continue
            asg[v] = dst
            loads[src] -= 1
            loads[dst] += 1
            moved = True
        if not moved:
            # Every preferred destination filled up this pass; force one
            # move to the first open part so the excess still shrinks.
            v = int(cand[0])
            dst = int(np.flatnonzero(loads < size)[0])
            loads[asg[v]] -= 1
            loads[dst] += 1
            asg[v] = dst


def split_k(aff, k: int, *, refine_limit: int = REFINE_LIMIT) -> list[list[int]]:
    """Split the tasks of *aff* into *k* equal affinity-heavy parts.

    *aff* is a symmetric zero-diagonal affinity matrix (dense array or
    scipy sparse); its order must be divisible by *k*. Returns *k* lists
    of ``n // k`` sorted task indices. Part numbering is deterministic
    but carries no topology meaning — callers order parts separately
    (see ``maporder``).
    """
    n = int(aff.shape[0])
    if k <= 0:
        raise MappingError(f"part count must be positive, got {k}")
    if n % k:
        raise MappingError(f"cannot split {n} tasks into {k} equal parts")
    size = n // k
    if k == 1:
        return [list(range(n))]
    if size == 1:
        return [[i] for i in range(n)]
    if n <= DIRECT_LIMIT:
        return group_processes(_densify(aff), size, refine=True)

    levels = coarsen(aff, target=max(COARSE_MIN, COARSE_PER_PART * k))
    coarsest = levels[-1]
    dense_c = parts_to_dense(
        coarsest.indptr, coarsest.indices, coarsest.data, coarsest.n
    )
    asg = _partition_weighted(dense_c, coarsest.weights, k, size)
    if coarsest.n <= refine_limit:
        asg = _refine_asg(dense_c, asg, k)
    for li in range(len(levels) - 2, -1, -1):
        lvl = levels[li]
        asg = asg[lvl.coarse_of]
        if lvl.n <= refine_limit:
            dense = parts_to_dense(lvl.indptr, lvl.indices, lvl.data, lvl.n)
            asg = _refine_asg(dense, asg, k)
    finest = levels[0]
    asg = _rebalance_exact(
        finest.indptr, finest.indices, finest.data, asg, k, size
    )
    return [np.flatnonzero(asg == g).tolist() for g in range(k)]
