"""Control-thread handling (Algorithm 1, line 1).

ORWL deploys control threads alongside compute threads to manage location
FIFOs and data transfer. The paper's policy, in priority order:

1. **Hyperthreading available** — compute threads get one PU per physical
   core; the sibling PU of each core is reserved for the control threads
   of the tasks placed there.
2. **Spare cores** (more leaves than compute threads) — the communication
   matrix is extended with control pseudo-threads (tiny affinity towards
   their owning task) so TreeMatch places them on the spare leaves.
3. **Neither** — control threads stay unbound and the OS schedules them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MappingError
from repro.util.matrix import check_square

__all__ = ["ControlPlan", "extend_for_control_threads", "CONTROL_EPSILON"]

#: Relative weight of control↔task affinity edges; small enough never to
#: perturb the grouping of compute threads, large enough to pull a control
#: pseudo-thread towards its owner when slots allow.
CONTROL_EPSILON = 1e-6


@dataclass(frozen=True)
class ControlPlan:
    """How control threads will be handled for one mapping run.

    ``mode`` is one of ``"ht-sibling"``, ``"spare-core"`` or ``"os"``;
    ``slots`` is the number of control pseudo-threads appended to the
    matrix (only in spare-core mode).
    """

    mode: str
    slots: int = 0


def extend_for_control_threads(
    m: np.ndarray,
    n_control: int,
    n_leaves: int,
    *,
    hyperthreading: bool,
    control_owners: list[int] | None = None,
) -> tuple[np.ndarray, ControlPlan]:
    """Return the (possibly extended) affinity matrix and the control plan.

    *m* is the compute-thread affinity matrix (symmetric). *n_leaves* is
    the number of compute-granularity leaves of the tree (cores when
    hyperthread-aware, PUs otherwise).
    """
    a = check_square(m, name="affinity matrix")
    p = a.shape[0]
    if n_control < 0:
        raise MappingError(f"n_control must be >= 0, got {n_control}")

    if n_control == 0:
        return a, ControlPlan("os", 0)

    if hyperthreading:
        # Sibling PUs absorb control threads; the matrix is unchanged
        # because compute mapping happens at core granularity.
        return a, ControlPlan("ht-sibling", 0)

    spare = n_leaves - p
    if spare <= 0:
        return a, ControlPlan("os", 0)

    slots = min(spare, n_control)
    owners = control_owners if control_owners is not None else [
        i % p for i in range(slots)
    ]
    if len(owners) < slots:
        raise MappingError(
            f"{len(owners)} control owners for {slots} control slots"
        )
    scale = float(a.max()) if a.size and a.max() > 0 else 1.0
    eps = CONTROL_EPSILON * scale

    ext = np.zeros((p + slots, p + slots))
    ext[:p, :p] = a
    for s in range(slots):
        owner = owners[s]
        if not 0 <= owner < p:
            raise MappingError(f"control owner {owner} outside [0, {p})")
        ext[p + s, owner] = ext[owner, p + s] = eps
    return ext, ControlPlan("spare-core", slots)
