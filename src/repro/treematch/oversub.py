"""Oversubscription handling (Algorithm 1, line 2).

When the communication matrix has more threads than the tree has leaves,
TreeMatch cannot assign one thread per leaf. The paper's adaptation adds a
*virtual level* below the leaves with just enough arity, computes the
mapping on the virtual tree, and then "goes up one level": the ``v``
threads of each virtual group share the physical leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.errors import MappingError

__all__ = ["OversubscriptionPlan", "manage_oversubscription"]


@dataclass(frozen=True)
class OversubscriptionPlan:
    """Result of :func:`manage_oversubscription`.

    ``arities`` is the (possibly extended) arity list whose product equals
    ``virtual_leaves``; ``factor`` is the number of threads per physical
    leaf (1 = no oversubscription).
    """

    arities: tuple[int, ...]
    factor: int
    physical_leaves: int

    @property
    def virtual_leaves(self) -> int:
        return self.physical_leaves * self.factor

    @property
    def oversubscribed(self) -> bool:
        return self.factor > 1


def manage_oversubscription(
    arities: list[int], n_threads: int
) -> OversubscriptionPlan:
    """Extend *arities* with a virtual level if *n_threads* exceeds leaves.

    *arities* is the per-level child count of the (compute-granularity)
    topology tree; its product is the physical leaf count.
    """
    if n_threads <= 0:
        raise MappingError(f"n_threads must be positive, got {n_threads}")
    leaves = 1
    for a in arities:
        if a < 1:
            raise MappingError(f"invalid arity {a}")
        leaves *= a
    if n_threads <= leaves:
        return OversubscriptionPlan(tuple(arities), 1, leaves)
    factor = ceil(n_threads / leaves)
    return OversubscriptionPlan((*arities, factor), factor, leaves)
