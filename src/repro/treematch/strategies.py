"""Baseline placement strategies.

These reproduce the affinity interfaces the paper compares against
(Section II / VI): Intel ``KMP_AFFINITY=compact|scatter`` and OpenMP 4.5
``OMP_PLACES=cores`` with ``OMP_PROC_BIND=close|spread``. None of them look
at the communication matrix — that blindness is exactly what the paper
criticizes.
"""

from __future__ import annotations

from math import ceil

from repro.errors import MappingError
from repro.topology.objects import ObjType, TopoObject
from repro.topology.tree import Topology
from repro.treematch.mapping import Placement

__all__ = [
    "compact_placement",
    "scatter_placement",
    "cores_close_placement",
    "cores_spread_placement",
    "sequential_placement",
    "strategy_by_name",
    "mapping_strategy",
    "map_with_strategy",
    "MAPPING_STRATEGIES",
    "MULTILEVEL_CUTOVER",
]

#: ``strategy="auto"`` switches from the dense greedy+refine engine to
#: the multilevel engine above this task count — past it the dense
#: O(p²) grouping sweeps dominate (BENCH_sim.json ``mapping_bench``:
#: ~6 s at p=4096 and growing quadratically, vs seconds at 100k for
#: multilevel).
MULTILEVEL_CUTOVER = 8192

#: Affinity-aware mapping engines selectable by name (the baselines
#: above stay in ``_STRATEGIES`` — they ignore the matrix entirely).
MAPPING_STRATEGIES = ("auto", "greedy", "multilevel")


def _check_n(
    topology: Topology,
    n_threads: int,
    capacity: int,
    *,
    oversubscribe: bool = False,
) -> int:
    """Validate the thread count; return the oversubscription factor."""
    if n_threads <= 0:
        raise MappingError(f"n_threads must be positive, got {n_threads}")
    if n_threads <= capacity:
        return 1
    if not oversubscribe:
        raise MappingError(
            f"{n_threads} threads exceed capacity {capacity} of {topology.name}"
        )
    return ceil(n_threads / capacity)


def _placement(
    topology: Topology,
    order: list[TopoObject],
    n: int,
    name: str,
    factor: int = 1,
) -> Placement:
    # Threads wrap around the leaf order when oversubscribed, mirroring
    # how the affinity-blind baselines behave on an overcommitted node.
    width = len(order)
    return Placement(
        thread_to_pu={i: order[i % width].os_index for i in range(n)},
        control_mode="os",
        granularity="pu",
        oversub_factor=factor,
        topology_name=topology.name,
        groups_per_level=(),
    )


def compact_placement(
    topology: Topology, n_threads: int, *, oversubscribe: bool = False
) -> Placement:
    """``KMP_AFFINITY=compact``: fill PUs in os order — hyperthread
    siblings first, then the next core, then the next socket."""
    pus = [pu for core in topology.cores for pu in core.leaves()]
    factor = _check_n(topology, n_threads, len(pus),
                      oversubscribe=oversubscribe)
    return _placement(topology, pus, n_threads, "compact", factor)


def scatter_placement(
    topology: Topology, n_threads: int, *, oversubscribe: bool = False
) -> Placement:
    """``KMP_AFFINITY=scatter``: distribute as evenly as possible across
    sockets, then across cores, using hyperthread siblings last."""
    sockets = topology.sockets or topology.numa_nodes
    # Round-robin: sibling index varies slowest, then core rank, then socket.
    per_socket_cores = [
        [o for o in s.descendants() if o.type is ObjType.CORE] for s in sockets
    ]
    max_cores = max(len(cs) for cs in per_socket_cores)
    max_sibs = max(len(c.leaves()) for cs in per_socket_cores for c in cs)
    order: list[TopoObject] = []
    for sib in range(max_sibs):
        for core_rank in range(max_cores):
            for cores in per_socket_cores:
                if core_rank < len(cores):
                    leaves = cores[core_rank].leaves()
                    if sib < len(leaves):
                        order.append(leaves[sib])
    factor = _check_n(topology, n_threads, len(order),
                      oversubscribe=oversubscribe)
    return _placement(topology, order, n_threads, "scatter", factor)


def cores_close_placement(
    topology: Topology, n_threads: int, *, oversubscribe: bool = False
) -> Placement:
    """``OMP_PLACES=cores`` + ``OMP_PROC_BIND=close``: one thread per core,
    cores in machine order (hyperthread siblings left idle)."""
    order = [core.children[0] for core in topology.cores]
    factor = _check_n(topology, n_threads, len(order),
                      oversubscribe=oversubscribe)
    return _placement(topology, order, n_threads, "cores-close", factor)


def cores_spread_placement(
    topology: Topology, n_threads: int, *, oversubscribe: bool = False
) -> Placement:
    """``OMP_PLACES=cores`` + ``OMP_PROC_BIND=spread``: one thread per core,
    cores round-robined across sockets."""
    sockets = topology.sockets or topology.numa_nodes
    per_socket_cores = [
        [o for o in s.descendants() if o.type is ObjType.CORE] for s in sockets
    ]
    max_cores = max(len(cs) for cs in per_socket_cores)
    order = [
        cores[rank].children[0]
        for rank in range(max_cores)
        for cores in per_socket_cores
        if rank < len(cores)
    ]
    factor = _check_n(topology, n_threads, len(order),
                      oversubscribe=oversubscribe)
    return _placement(topology, order, n_threads, "cores-spread", factor)


def sequential_placement(topology: Topology, n_threads: int = 1) -> Placement:
    """Everything on PU 0 — the sequential baseline of Fig. 6."""
    pu0 = topology.pus[0]
    if n_threads <= 0:
        raise MappingError("n_threads must be positive")
    return Placement(
        thread_to_pu={i: pu0.os_index for i in range(n_threads)},
        control_mode="os",
        granularity="pu",
        topology_name=topology.name,
    )


_STRATEGIES = {
    "compact": compact_placement,
    "scatter": scatter_placement,
    "cores-close": cores_close_placement,
    "cores-spread": cores_spread_placement,
    "sequential": sequential_placement,
}


def mapping_strategy(name: str, n_tasks: int) -> str:
    """Resolve a mapping-strategy name to a concrete engine.

    ``"auto"`` picks ``"multilevel"`` above :data:`MULTILEVEL_CUTOVER`
    tasks and ``"greedy"`` (the dense group+refine pipeline of
    ``treematch_map``) otherwise.
    """
    if name not in MAPPING_STRATEGIES:
        raise MappingError(
            f"unknown mapping strategy {name!r}; known: "
            f"{', '.join(MAPPING_STRATEGIES)}"
        )
    if name == "auto":
        return "multilevel" if n_tasks > MULTILEVEL_CUTOVER else "greedy"
    return name


def map_with_strategy(
    topology: Topology,
    comm,
    *,
    strategy: str = "auto",
    n_jobs: int | None = 1,
    **kwargs,
) -> Placement:
    """Run the selected affinity-aware mapping engine.

    Extra keyword arguments go to the chosen engine
    (:func:`~repro.treematch.mapping.treematch_map` for ``"greedy"``,
    :func:`~repro.treematch.mapping.multilevel_map` for
    ``"multilevel"``); ``n_jobs`` only applies to the multilevel path.
    """
    from repro.treematch.mapping import multilevel_map, treematch_map

    engine = mapping_strategy(strategy, comm.order)
    if engine == "multilevel":
        return multilevel_map(topology, comm, n_jobs=n_jobs, **kwargs)
    return treematch_map(topology, comm, **kwargs)


def strategy_by_name(name: str):
    """Look up a baseline strategy callable by name."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise MappingError(
            f"unknown strategy {name!r}; known: {', '.join(sorted(_STRATEGIES))}"
        ) from None
